// Package dataset models the data matrix of the paper (Section 2.1): an
// object-by-attribute table with numeric, categorical and alphanumeric
// attributes, horizontally partitioned across data-holder sites.
//
// Tables are stored column-wise, matching the paper's observation that
// "local data matrices are usually accessed in columns". Partitions carry
// their owning site's name, and ObjectID gives every object the globally
// unique (site, index) identity used when clustering results are published
// (paper Figure 13: "Xj denotes the object with id j at site X").
package dataset

import (
	"fmt"

	"ppclust/internal/alphabet"
	"ppclust/internal/catdist"
)

// AttrType classifies an attribute, selecting its comparison function and
// privacy-preserving protocol.
type AttrType int

const (
	// Numeric attributes compare by |x−y| (paper Section 4.1).
	Numeric AttrType = iota
	// Categorical attributes compare by equality (paper Section 4.3).
	Categorical
	// Alphanumeric attributes compare by edit distance (paper Section 4.2).
	Alphanumeric
	// Ordered attributes are categorical values with a public total order,
	// compared by rank distance through the numeric protocol — the first
	// of the two extensions the paper leaves as future work.
	Ordered
	// Hierarchical attributes are categorical values in a public taxonomy,
	// compared by tree distance on encrypted root paths — the second
	// future-work extension.
	Hierarchical
)

// String names the attribute type.
func (t AttrType) String() string {
	switch t {
	case Numeric:
		return "numeric"
	case Categorical:
		return "categorical"
	case Alphanumeric:
		return "alphanumeric"
	case Ordered:
		return "ordered"
	case Hierarchical:
		return "hierarchical"
	default:
		return "unknown"
	}
}

// Attribute describes one column of the data matrix.
type Attribute struct {
	// Name identifies the attribute; it doubles as the encryption domain
	// for categorical columns.
	Name string
	// Type selects the comparison protocol.
	Type AttrType
	// Alphabet is required for alphanumeric attributes and ignored
	// otherwise.
	Alphabet *alphabet.Alphabet
	// Order is required for ordered attributes: the public total order of
	// the category values.
	Order *catdist.Ordering
	// Taxonomy is required for hierarchical attributes: the public
	// category tree.
	Taxonomy *catdist.Taxonomy
	// Weight is this attribute's contribution to the merged dissimilarity
	// matrix (paper Section 5). Zero-valued weights are replaced by 1 at
	// validation.
	Weight float64
}

// Schema is the ordered attribute list all parties agree on before the
// protocol starts (paper Section 3).
type Schema struct {
	Attrs []Attribute
}

// Validate checks the schema and fills defaulted weights in place.
func (s *Schema) Validate() error {
	if len(s.Attrs) == 0 {
		return fmt.Errorf("dataset: schema has no attributes")
	}
	seen := make(map[string]bool, len(s.Attrs))
	for i := range s.Attrs {
		a := &s.Attrs[i]
		if a.Name == "" {
			return fmt.Errorf("dataset: attribute %d has no name", i)
		}
		if seen[a.Name] {
			return fmt.Errorf("dataset: duplicate attribute %q", a.Name)
		}
		seen[a.Name] = true
		switch a.Type {
		case Numeric, Categorical:
		case Alphanumeric:
			if a.Alphabet == nil {
				return fmt.Errorf("dataset: alphanumeric attribute %q needs an alphabet", a.Name)
			}
		case Ordered:
			if a.Order == nil {
				return fmt.Errorf("dataset: ordered attribute %q needs an ordering", a.Name)
			}
		case Hierarchical:
			if a.Taxonomy == nil {
				return fmt.Errorf("dataset: hierarchical attribute %q needs a taxonomy", a.Name)
			}
		default:
			return fmt.Errorf("dataset: attribute %q has unknown type %d", a.Name, a.Type)
		}
		if a.Weight < 0 {
			return fmt.Errorf("dataset: attribute %q has negative weight %v", a.Name, a.Weight)
		}
		if a.Weight == 0 {
			a.Weight = 1
		}
	}
	return nil
}

// Weights returns the attribute weight vector in schema order.
func (s *Schema) Weights() []float64 {
	w := make([]float64, len(s.Attrs))
	for i, a := range s.Attrs {
		w[i] = a.Weight
	}
	return w
}

// AttrIndex returns the position of the named attribute, or -1.
func (s *Schema) AttrIndex(name string) int {
	for i, a := range s.Attrs {
		if a.Name == name {
			return i
		}
	}
	return -1
}

// Table is one site's horizontal partition of the data matrix: column-wise
// typed storage aligned with a Schema.
type Table struct {
	schema Schema
	n      int
	// cols[i] is []float64 for numeric attributes and []string for
	// categorical and alphanumeric ones.
	cols []any
}

// NewTable returns an empty table over the schema. The schema is validated
// (and weight defaults filled) first.
func NewTable(schema Schema) (*Table, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	t := &Table{schema: schema, cols: make([]any, len(schema.Attrs))}
	for i, a := range schema.Attrs {
		if a.Type == Numeric {
			t.cols[i] = []float64{}
		} else {
			t.cols[i] = []string{}
		}
	}
	return t, nil
}

// MustNewTable is NewTable panicking on error, for tests and examples.
func MustNewTable(schema Schema) *Table {
	t, err := NewTable(schema)
	if err != nil {
		panic(err)
	}
	return t
}

// Schema returns the table's schema.
func (t *Table) Schema() Schema { return t.schema }

// Len returns the number of objects (rows).
func (t *Table) Len() int { return t.n }

// AppendRow adds one object. vals must match the schema: float64 for
// numeric attributes, string for categorical and alphanumeric; alphanumeric
// values must lie within the attribute's alphabet.
func (t *Table) AppendRow(vals ...any) error {
	if len(vals) != len(t.schema.Attrs) {
		return fmt.Errorf("dataset: row has %d values, schema has %d attributes", len(vals), len(t.schema.Attrs))
	}
	// Validate the full row before mutating anything.
	for i, a := range t.schema.Attrs {
		switch a.Type {
		case Numeric:
			if _, ok := vals[i].(float64); !ok {
				return fmt.Errorf("dataset: attribute %q wants float64, got %T", a.Name, vals[i])
			}
		case Categorical:
			if _, ok := vals[i].(string); !ok {
				return fmt.Errorf("dataset: attribute %q wants string, got %T", a.Name, vals[i])
			}
		case Alphanumeric:
			s, ok := vals[i].(string)
			if !ok {
				return fmt.Errorf("dataset: attribute %q wants string, got %T", a.Name, vals[i])
			}
			if !a.Alphabet.Contains(s) {
				return fmt.Errorf("dataset: value %q of attribute %q is outside %v", s, a.Name, a.Alphabet)
			}
		case Ordered:
			s, ok := vals[i].(string)
			if !ok {
				return fmt.Errorf("dataset: attribute %q wants string, got %T", a.Name, vals[i])
			}
			if _, in := a.Order.Rank(s); !in {
				return fmt.Errorf("dataset: value %q of attribute %q is not in its ordering", s, a.Name)
			}
		case Hierarchical:
			s, ok := vals[i].(string)
			if !ok {
				return fmt.Errorf("dataset: attribute %q wants string, got %T", a.Name, vals[i])
			}
			if !a.Taxonomy.Contains(s) {
				return fmt.Errorf("dataset: value %q of attribute %q is not in its taxonomy", s, a.Name)
			}
		}
	}
	for i, a := range t.schema.Attrs {
		if a.Type == Numeric {
			t.cols[i] = append(t.cols[i].([]float64), vals[i].(float64))
		} else {
			t.cols[i] = append(t.cols[i].([]string), vals[i].(string))
		}
	}
	t.n++
	return nil
}

// MustAppendRow is AppendRow panicking on error.
func (t *Table) MustAppendRow(vals ...any) {
	if err := t.AppendRow(vals...); err != nil {
		panic(err)
	}
}

// NumericCol returns the values of numeric attribute i. The returned slice
// is the table's backing storage; callers must not modify it.
func (t *Table) NumericCol(i int) ([]float64, error) {
	if err := t.checkAttr(i, Numeric); err != nil {
		return nil, err
	}
	return t.cols[i].([]float64), nil
}

// StringCol returns the values of categorical or alphanumeric attribute i.
// The returned slice is backing storage; callers must not modify it.
func (t *Table) StringCol(i int) ([]string, error) {
	if i < 0 || i >= len(t.schema.Attrs) {
		return nil, fmt.Errorf("dataset: attribute %d out of range", i)
	}
	if t.schema.Attrs[i].Type == Numeric {
		return nil, fmt.Errorf("dataset: attribute %q is numeric", t.schema.Attrs[i].Name)
	}
	return t.cols[i].([]string), nil
}

// RanksCol maps ordered attribute i to its float rank column — the values
// the numeric comparison protocol runs on.
func (t *Table) RanksCol(i int) ([]float64, error) {
	if err := t.checkAttr(i, Ordered); err != nil {
		return nil, err
	}
	return t.schema.Attrs[i].Order.Ranks(t.cols[i].([]string))
}

// SymbolCol encodes alphanumeric attribute i into symbol vectors.
func (t *Table) SymbolCol(i int) ([][]alphabet.Symbol, error) {
	if err := t.checkAttr(i, Alphanumeric); err != nil {
		return nil, err
	}
	a := t.schema.Attrs[i].Alphabet
	raw := t.cols[i].([]string)
	out := make([][]alphabet.Symbol, len(raw))
	for r, s := range raw {
		v, err := a.Encode(s)
		if err != nil {
			return nil, fmt.Errorf("dataset: row %d of %q: %w", r, t.schema.Attrs[i].Name, err)
		}
		out[r] = v
	}
	return out, nil
}

func (t *Table) checkAttr(i int, want AttrType) error {
	if i < 0 || i >= len(t.schema.Attrs) {
		return fmt.Errorf("dataset: attribute %d out of range", i)
	}
	if got := t.schema.Attrs[i].Type; got != want {
		return fmt.Errorf("dataset: attribute %q is %v, want %v", t.schema.Attrs[i].Name, got, want)
	}
	return nil
}

// Row materializes row r as values in schema order, for display.
func (t *Table) Row(r int) ([]any, error) {
	if r < 0 || r >= t.n {
		return nil, fmt.Errorf("dataset: row %d out of range", r)
	}
	out := make([]any, len(t.schema.Attrs))
	for i, a := range t.schema.Attrs {
		if a.Type == Numeric {
			out[i] = t.cols[i].([]float64)[r]
		} else {
			out[i] = t.cols[i].([]string)[r]
		}
	}
	return out, nil
}

// Partition is one site's share of the horizontally partitioned data.
type Partition struct {
	// Site is the data holder's name ("A", "B", …).
	Site string
	// Table holds the site's objects.
	Table *Table
}

// ObjectID globally identifies an object as (site, local index).
type ObjectID struct {
	Site  string
	Index int
}

// String renders the 1-based form used by the paper's Figure 13 ("A1" is
// the first object at site A).
func (o ObjectID) String() string { return fmt.Sprintf("%s%d", o.Site, o.Index+1) }

// GlobalIndex returns the global object ordering the third party uses: all
// of partition 0's objects, then partition 1's, and so on.
func GlobalIndex(parts []Partition) []ObjectID {
	var out []ObjectID
	for _, p := range parts {
		for i := 0; i < p.Table.Len(); i++ {
			out = append(out, ObjectID{Site: p.Site, Index: i})
		}
	}
	return out
}

// Concat merges partitions into one centralized table in global order — the
// non-private baseline the accuracy experiments compare against. All
// partitions must share a schema shape.
func Concat(parts []Partition) (*Table, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("dataset: no partitions")
	}
	out, err := NewTable(parts[0].Table.schema)
	if err != nil {
		return nil, err
	}
	for _, p := range parts {
		if len(p.Table.schema.Attrs) != len(out.schema.Attrs) {
			return nil, fmt.Errorf("dataset: partition %q schema mismatch", p.Site)
		}
		for i, a := range p.Table.schema.Attrs {
			if a.Name != out.schema.Attrs[i].Name || a.Type != out.schema.Attrs[i].Type {
				return nil, fmt.Errorf("dataset: partition %q attribute %d mismatch", p.Site, i)
			}
		}
		for r := 0; r < p.Table.Len(); r++ {
			row, err := p.Table.Row(r)
			if err != nil {
				return nil, err
			}
			if err := out.AppendRow(row...); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// Split distributes table rows into partitions according to assign, where
// assign[r] is the index of the receiving site. Sites may end up empty.
func Split(t *Table, sites []string, assign []int) ([]Partition, error) {
	if len(assign) != t.Len() {
		return nil, fmt.Errorf("dataset: %d assignments for %d rows", len(assign), t.Len())
	}
	parts := make([]Partition, len(sites))
	for i, s := range sites {
		if s == "" {
			return nil, fmt.Errorf("dataset: empty site name at %d", i)
		}
		pt, err := NewTable(t.schema)
		if err != nil {
			return nil, err
		}
		parts[i] = Partition{Site: s, Table: pt}
	}
	for r, site := range assign {
		if site < 0 || site >= len(sites) {
			return nil, fmt.Errorf("dataset: row %d assigned to invalid site %d", r, site)
		}
		row, err := t.Row(r)
		if err != nil {
			return nil, err
		}
		if err := parts[site].Table.AppendRow(row...); err != nil {
			return nil, err
		}
	}
	return parts, nil
}
