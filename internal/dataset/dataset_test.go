package dataset

import (
	"bytes"
	"strings"
	"testing"

	"ppclust/internal/alphabet"
)

func testSchema() Schema {
	return Schema{Attrs: []Attribute{
		{Name: "age", Type: Numeric},
		{Name: "city", Type: Categorical},
		{Name: "dna", Type: Alphanumeric, Alphabet: alphabet.DNA},
	}}
}

func TestSchemaValidateDefaultsWeights(t *testing.T) {
	s := testSchema()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, a := range s.Attrs {
		if a.Weight != 1 {
			t.Fatalf("weight of %q = %v, want default 1", a.Name, a.Weight)
		}
	}
	w := s.Weights()
	if len(w) != 3 || w[0] != 1 {
		t.Fatalf("Weights = %v", w)
	}
}

func TestSchemaValidationErrors(t *testing.T) {
	cases := []Schema{
		{},
		{Attrs: []Attribute{{Name: "", Type: Numeric}}},
		{Attrs: []Attribute{{Name: "a", Type: Numeric}, {Name: "a", Type: Numeric}}},
		{Attrs: []Attribute{{Name: "s", Type: Alphanumeric}}}, // no alphabet
		{Attrs: []Attribute{{Name: "x", Type: AttrType(9)}}},
		{Attrs: []Attribute{{Name: "x", Type: Numeric, Weight: -2}}},
	}
	for i, s := range cases {
		if err := s.Validate(); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestAttrTypeString(t *testing.T) {
	if Numeric.String() != "numeric" || Categorical.String() != "categorical" ||
		Alphanumeric.String() != "alphanumeric" || AttrType(9).String() != "unknown" {
		t.Fatal("AttrType.String mismatch")
	}
}

func TestAttrIndex(t *testing.T) {
	s := testSchema()
	if s.AttrIndex("city") != 1 || s.AttrIndex("nope") != -1 {
		t.Fatal("AttrIndex mismatch")
	}
}

func TestTableAppendAndAccess(t *testing.T) {
	tab := MustNewTable(testSchema())
	tab.MustAppendRow(31.5, "istanbul", "ACGT")
	tab.MustAppendRow(44.0, "ankara", "TT")
	if tab.Len() != 2 {
		t.Fatalf("Len = %d", tab.Len())
	}
	nums, err := tab.NumericCol(0)
	if err != nil || nums[1] != 44.0 {
		t.Fatalf("NumericCol: %v %v", nums, err)
	}
	cats, err := tab.StringCol(1)
	if err != nil || cats[0] != "istanbul" {
		t.Fatalf("StringCol: %v %v", cats, err)
	}
	syms, err := tab.SymbolCol(2)
	if err != nil || len(syms[0]) != 4 || len(syms[1]) != 2 {
		t.Fatalf("SymbolCol: %v %v", syms, err)
	}
	row, err := tab.Row(0)
	if err != nil || row[0].(float64) != 31.5 || row[2].(string) != "ACGT" {
		t.Fatalf("Row: %v %v", row, err)
	}
}

func TestTableTypeEnforcement(t *testing.T) {
	tab := MustNewTable(testSchema())
	if err := tab.AppendRow("oops", "x", "A"); err == nil {
		t.Fatal("string for numeric accepted")
	}
	if err := tab.AppendRow(1.0, 2.0, "A"); err == nil {
		t.Fatal("float for categorical accepted")
	}
	if err := tab.AppendRow(1.0, "x", "XYZ"); err == nil {
		t.Fatal("out-of-alphabet string accepted")
	}
	if err := tab.AppendRow(1.0, "x"); err == nil {
		t.Fatal("short row accepted")
	}
	if tab.Len() != 0 {
		t.Fatal("failed append mutated the table")
	}
	if _, err := tab.NumericCol(1); err == nil {
		t.Fatal("NumericCol on categorical accepted")
	}
	if _, err := tab.NumericCol(9); err == nil {
		t.Fatal("out-of-range column accepted")
	}
	if _, err := tab.StringCol(0); err == nil {
		t.Fatal("StringCol on numeric accepted")
	}
	if _, err := tab.SymbolCol(1); err == nil {
		t.Fatal("SymbolCol on categorical accepted")
	}
	if _, err := tab.Row(0); err == nil {
		t.Fatal("Row out of range accepted")
	}
}

func TestObjectIDStringIsOneBased(t *testing.T) {
	o := ObjectID{Site: "A", Index: 0}
	if o.String() != "A1" {
		t.Fatalf("ObjectID = %q, want A1", o)
	}
	if (ObjectID{Site: "C", Index: 2}).String() != "C3" {
		t.Fatal("ObjectID C3 mismatch")
	}
}

func buildParts(t *testing.T) []Partition {
	t.Helper()
	a := MustNewTable(testSchema())
	a.MustAppendRow(1.0, "x", "A")
	a.MustAppendRow(2.0, "y", "C")
	b := MustNewTable(testSchema())
	b.MustAppendRow(3.0, "x", "G")
	return []Partition{{Site: "A", Table: a}, {Site: "B", Table: b}}
}

func TestGlobalIndex(t *testing.T) {
	idx := GlobalIndex(buildParts(t))
	want := []string{"A1", "A2", "B1"}
	if len(idx) != 3 {
		t.Fatalf("len = %d", len(idx))
	}
	for i, w := range want {
		if idx[i].String() != w {
			t.Fatalf("idx[%d] = %v, want %s", i, idx[i], w)
		}
	}
}

func TestConcatMatchesGlobalOrder(t *testing.T) {
	parts := buildParts(t)
	all, err := Concat(parts)
	if err != nil {
		t.Fatal(err)
	}
	if all.Len() != 3 {
		t.Fatalf("Len = %d", all.Len())
	}
	nums, _ := all.NumericCol(0)
	if nums[0] != 1 || nums[2] != 3 {
		t.Fatalf("concat order wrong: %v", nums)
	}
}

func TestConcatSchemaMismatch(t *testing.T) {
	parts := buildParts(t)
	other := MustNewTable(Schema{Attrs: []Attribute{{Name: "z", Type: Numeric}}})
	parts = append(parts, Partition{Site: "C", Table: other})
	if _, err := Concat(parts); err == nil {
		t.Fatal("schema mismatch accepted")
	}
	if _, err := Concat(nil); err == nil {
		t.Fatal("empty concat accepted")
	}
}

func TestSplitRoundTrip(t *testing.T) {
	all, err := Concat(buildParts(t))
	if err != nil {
		t.Fatal(err)
	}
	parts, err := Split(all, []string{"X", "Y"}, []int{0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if parts[0].Table.Len() != 2 || parts[1].Table.Len() != 1 {
		t.Fatalf("split sizes %d/%d", parts[0].Table.Len(), parts[1].Table.Len())
	}
	nums, _ := parts[0].Table.NumericCol(0)
	if nums[0] != 1 || nums[1] != 3 {
		t.Fatalf("split preserved wrong rows: %v", nums)
	}
}

func TestSplitValidation(t *testing.T) {
	all, _ := Concat(buildParts(t))
	if _, err := Split(all, []string{"X"}, []int{0}); err == nil {
		t.Fatal("short assignment accepted")
	}
	if _, err := Split(all, []string{"X"}, []int{0, 0, 5}); err == nil {
		t.Fatal("invalid site index accepted")
	}
	if _, err := Split(all, []string{""}, []int{0, 0, 0}); err == nil {
		t.Fatal("empty site name accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tab := MustNewTable(testSchema())
	tab.MustAppendRow(1.25, "izmir, center", "ACGT") // comma forces quoting
	tab.MustAppendRow(-3.0, "bursa", "")
	var buf bytes.Buffer
	if err := WriteCSV(tab, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(testSchema(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("Len = %d", back.Len())
	}
	nums, _ := back.NumericCol(0)
	if nums[0] != 1.25 || nums[1] != -3.0 {
		t.Fatalf("numeric round trip: %v", nums)
	}
	cats, _ := back.StringCol(1)
	if cats[0] != "izmir, center" {
		t.Fatalf("quoted categorical round trip: %q", cats[0])
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(testSchema(), strings.NewReader("notanumber,x,A\n")); err == nil {
		t.Fatal("bad numeric accepted")
	}
	if _, err := ReadCSV(testSchema(), strings.NewReader("1.0,x\n")); err == nil {
		t.Fatal("short record accepted")
	}
	if _, err := ReadCSV(testSchema(), strings.NewReader("1.0,x,Z\n")); err == nil {
		t.Fatal("out-of-alphabet value accepted")
	}
	empty, err := ReadCSV(testSchema(), strings.NewReader(""))
	if err != nil || empty.Len() != 0 {
		t.Fatalf("empty stream: %v len=%d", err, empty.Len())
	}
}
