package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// ReadCSV parses a headerless CSV stream into a table over the schema,
// converting numeric columns with strconv and validating alphanumeric
// values against their alphabets.
func ReadCSV(schema Schema, r io.Reader) (*Table, error) {
	t, err := NewTable(schema)
	if err != nil {
		return nil, err
	}
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(schema.Attrs)
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: csv line %d: %w", line+1, err)
		}
		line++
		vals := make([]any, len(rec))
		for i, field := range rec {
			if t.schema.Attrs[i].Type == Numeric {
				f, err := strconv.ParseFloat(field, 64)
				if err != nil {
					return nil, fmt.Errorf("dataset: csv line %d attribute %q: %w", line, t.schema.Attrs[i].Name, err)
				}
				vals[i] = f
			} else {
				vals[i] = field
			}
		}
		if err := t.AppendRow(vals...); err != nil {
			return nil, fmt.Errorf("dataset: csv line %d: %w", line, err)
		}
	}
}

// WriteCSV emits the table as headerless CSV in schema order.
func WriteCSV(t *Table, w io.Writer) error {
	cw := csv.NewWriter(w)
	for r := 0; r < t.Len(); r++ {
		row, err := t.Row(r)
		if err != nil {
			return err
		}
		rec := make([]string, len(row))
		for i, v := range row {
			switch x := v.(type) {
			case float64:
				rec[i] = strconv.FormatFloat(x, 'g', -1, 64)
			case string:
				rec[i] = x
			default:
				return fmt.Errorf("dataset: unexpected cell type %T", v)
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
