// Package catdist implements the distance functions for ordered and
// hierarchical categorical attributes that the İnan et al. paper explicitly
// defers: "This distance function is not adequate to measure the
// dissimilarity between ordered or hierarchical categorical attributes.
// Such categorical data requires more complex distance functions which are
// left as future work." (Section 4.3.)
//
// Two extensions are provided, both privacy-compatible with the paper's
// machinery:
//
//   - Ordering: a public total order over the category values. Values map
//     to integer ranks, so cross-site comparison reduces to the *numeric*
//     protocol on ranks — no new cryptography required.
//   - Taxonomy: a public category tree. A value's private encoding is the
//     deterministic tag sequence of its root path; the third party
//     evaluates the Wu–Palmer-style dissimilarity 1 − 2·|LCP| / (|a|+|b|)
//     on tag sequences, learning only the tree-relative relationship of
//     (undisclosed) values, exactly as it learns distances elsewhere.
//
// The category *structure* (order, tree shape) is public session metadata,
// like the schema; the *values held by each site* remain private.
package catdist

import (
	"fmt"

	"ppclust/internal/detenc"
)

// Ordering is a public total order over category values; rank i is the
// position of Values[i].
type Ordering struct {
	values []string
	rank   map[string]int
}

// NewOrdering builds an ordering from the given value sequence, rejecting
// duplicates and empty orders.
func NewOrdering(values []string) (*Ordering, error) {
	if len(values) == 0 {
		return nil, fmt.Errorf("catdist: empty ordering")
	}
	o := &Ordering{values: append([]string(nil), values...), rank: make(map[string]int, len(values))}
	for i, v := range o.values {
		if v == "" {
			return nil, fmt.Errorf("catdist: empty value at rank %d", i)
		}
		if _, dup := o.rank[v]; dup {
			return nil, fmt.Errorf("catdist: duplicate value %q", v)
		}
		o.rank[v] = i
	}
	return o, nil
}

// MustNewOrdering is NewOrdering panicking on error.
func MustNewOrdering(values ...string) *Ordering {
	o, err := NewOrdering(values)
	if err != nil {
		panic(err)
	}
	return o
}

// Size returns the number of ordered values.
func (o *Ordering) Size() int { return len(o.values) }

// Values returns the order, lowest rank first. Callers must not modify it.
func (o *Ordering) Values() []string { return o.values }

// Rank returns the position of v, reporting whether v is in the order.
func (o *Ordering) Rank(v string) (int, bool) {
	r, ok := o.rank[v]
	return r, ok
}

// Distance returns |rank(a) − rank(b)|, the natural ordinal distance. The
// session's per-attribute max-normalization scales it into [0, 1].
func (o *Ordering) Distance(a, b string) (float64, error) {
	ra, ok := o.rank[a]
	if !ok {
		return 0, fmt.Errorf("catdist: value %q not in ordering", a)
	}
	rb, ok := o.rank[b]
	if !ok {
		return 0, fmt.Errorf("catdist: value %q not in ordering", b)
	}
	d := ra - rb
	if d < 0 {
		d = -d
	}
	return float64(d), nil
}

// Ranks maps a column of values to float ranks, the input to the numeric
// comparison protocol.
func (o *Ordering) Ranks(values []string) ([]float64, error) {
	out := make([]float64, len(values))
	for i, v := range values {
		r, ok := o.rank[v]
		if !ok {
			return nil, fmt.Errorf("catdist: row %d value %q not in ordering", i, v)
		}
		out[i] = float64(r)
	}
	return out, nil
}

// Fingerprint summarizes the ordering for schema-agreement checks.
func (o *Ordering) Fingerprint() string {
	fp := "order:"
	for _, v := range o.values {
		fp += v + "|"
	}
	return fp
}

// Taxonomy is a public rooted category tree. Every value is a node; the
// dissimilarity of two values decreases with the depth of their lowest
// common ancestor.
type Taxonomy struct {
	root   string
	parent map[string]string
	// path[v] is the root→v node sequence, computed on Add.
	path map[string][]string
}

// NewTaxonomy creates a taxonomy with the given root category.
func NewTaxonomy(root string) (*Taxonomy, error) {
	if root == "" {
		return nil, fmt.Errorf("catdist: empty taxonomy root")
	}
	t := &Taxonomy{
		root:   root,
		parent: map[string]string{},
		path:   map[string][]string{root: {root}},
	}
	return t, nil
}

// MustNewTaxonomy is NewTaxonomy panicking on error.
func MustNewTaxonomy(root string) *Taxonomy {
	t, err := NewTaxonomy(root)
	if err != nil {
		panic(err)
	}
	return t
}

// Add inserts child under parent; parent must already exist.
func (t *Taxonomy) Add(child, parent string) error {
	if child == "" {
		return fmt.Errorf("catdist: empty category name")
	}
	if _, exists := t.path[child]; exists {
		return fmt.Errorf("catdist: category %q already in taxonomy", child)
	}
	pp, ok := t.path[parent]
	if !ok {
		return fmt.Errorf("catdist: parent %q not in taxonomy", parent)
	}
	t.parent[child] = parent
	p := make([]string, len(pp)+1)
	copy(p, pp)
	p[len(pp)] = child
	t.path[child] = p
	return nil
}

// MustAdd is Add panicking on error, for literal tree construction.
func (t *Taxonomy) MustAdd(child, parent string) *Taxonomy {
	if err := t.Add(child, parent); err != nil {
		panic(err)
	}
	return t
}

// Contains reports whether v is a category.
func (t *Taxonomy) Contains(v string) bool {
	_, ok := t.path[v]
	return ok
}

// Path returns the root→v node sequence.
func (t *Taxonomy) Path(v string) ([]string, error) {
	p, ok := t.path[v]
	if !ok {
		return nil, fmt.Errorf("catdist: value %q not in taxonomy", v)
	}
	return p, nil
}

// Distance returns the Wu–Palmer-style dissimilarity
// 1 − 2·depth(LCA) / (depth(a) + depth(b)), with depth counted in nodes
// from the root (root depth 1). Identical values are at distance 0;
// values meeting only at the root approach 1.
func (t *Taxonomy) Distance(a, b string) (float64, error) {
	pa, err := t.Path(a)
	if err != nil {
		return 0, err
	}
	pb, err := t.Path(b)
	if err != nil {
		return 0, err
	}
	return pathDistance(len(pa), len(pb), lcp(pa, pb)), nil
}

func lcp(a, b []string) int {
	n := 0
	for n < len(a) && n < len(b) && a[n] == b[n] {
		n++
	}
	return n
}

func pathDistance(la, lb, lcp int) float64 {
	return 1 - 2*float64(lcp)/float64(la+lb)
}

// Fingerprint summarizes the tree for schema-agreement checks
// (parent-insensitive orderings produce distinct fingerprints).
func (t *Taxonomy) Fingerprint() string {
	// Paths are canonical per node; concatenate sorted-by-node strings.
	// Map iteration order is randomized, so build deterministically from
	// insertion-independent data: collect and sort.
	nodes := make([]string, 0, len(t.path))
	for n := range t.path {
		nodes = append(nodes, n)
	}
	sortStrings(nodes)
	fp := "taxonomy:"
	for _, n := range nodes {
		fp += n + "<" + t.parent[n] + ";"
	}
	return fp
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// PathTags is a value's private encoding: the deterministic tags of its
// root path under the holder-group key. Equal prefixes ⇔ equal tag
// prefixes, which is all the third party needs.
func PathTags(t *Taxonomy, enc *detenc.Encryptor, value string) ([]detenc.Tag, error) {
	p, err := t.Path(value)
	if err != nil {
		return nil, err
	}
	tags := make([]detenc.Tag, len(p))
	for i, node := range p {
		tags[i] = enc.Encrypt(node)
	}
	return tags, nil
}

// TagDistance evaluates the taxonomy dissimilarity on two encrypted paths:
// identical to Distance on the underlying values whenever the tags come
// from the same taxonomy and key.
func TagDistance(a, b []detenc.Tag) float64 {
	n := 0
	for n < len(a) && n < len(b) && a[n] == b[n] {
		n++
	}
	return pathDistance(len(a), len(b), n)
}
