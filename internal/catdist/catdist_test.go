package catdist

import (
	"math"
	"testing"
	"testing/quick"

	"ppclust/internal/detenc"
	"ppclust/internal/rng"
)

func TestOrderingBasics(t *testing.T) {
	o := MustNewOrdering("low", "medium", "high", "critical")
	if o.Size() != 4 {
		t.Fatalf("Size = %d", o.Size())
	}
	if r, ok := o.Rank("high"); !ok || r != 2 {
		t.Fatalf("Rank(high) = %d,%v", r, ok)
	}
	if _, ok := o.Rank("nope"); ok {
		t.Fatal("unknown value ranked")
	}
	d, err := o.Distance("low", "critical")
	if err != nil || d != 3 {
		t.Fatalf("Distance = %v, %v", d, err)
	}
	if d, _ := o.Distance("high", "high"); d != 0 {
		t.Fatal("self distance nonzero")
	}
	if _, err := o.Distance("low", "nope"); err == nil {
		t.Fatal("unknown value accepted")
	}
}

func TestOrderingValidation(t *testing.T) {
	if _, err := NewOrdering(nil); err == nil {
		t.Fatal("empty ordering accepted")
	}
	if _, err := NewOrdering([]string{"a", "a"}); err == nil {
		t.Fatal("duplicate accepted")
	}
	if _, err := NewOrdering([]string{""}); err == nil {
		t.Fatal("empty value accepted")
	}
}

func TestOrderingRanks(t *testing.T) {
	o := MustNewOrdering("s", "m", "l")
	ranks, err := o.Ranks([]string{"l", "s", "m", "s"})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 0, 1, 0}
	for i := range want {
		if ranks[i] != want[i] {
			t.Fatalf("ranks = %v", ranks)
		}
	}
	if _, err := o.Ranks([]string{"xl"}); err == nil {
		t.Fatal("unknown value accepted")
	}
}

func TestOrderingDistanceIsMetric(t *testing.T) {
	o := MustNewOrdering("a", "b", "c", "d", "e")
	vals := o.Values()
	for _, x := range vals {
		for _, y := range vals {
			dxy, _ := o.Distance(x, y)
			dyx, _ := o.Distance(y, x)
			if dxy != dyx {
				t.Fatal("asymmetric")
			}
			for _, z := range vals {
				dxz, _ := o.Distance(x, z)
				dzy, _ := o.Distance(z, y)
				if dxy > dxz+dzy {
					t.Fatal("triangle inequality violated")
				}
			}
		}
	}
}

// diseases builds the taxonomy used across the tests:
//
//	disease ── infectious ── viral ── influenza
//	        │             │        └─ measles
//	        │             └─ bacterial ── tuberculosis
//	        └─ chronic ── diabetes
func diseases() *Taxonomy {
	return MustNewTaxonomy("disease").
		MustAdd("infectious", "disease").
		MustAdd("viral", "infectious").
		MustAdd("influenza", "viral").
		MustAdd("measles", "viral").
		MustAdd("bacterial", "infectious").
		MustAdd("tuberculosis", "bacterial").
		MustAdd("chronic", "disease").
		MustAdd("diabetes", "chronic")
}

func TestTaxonomyPaths(t *testing.T) {
	tax := diseases()
	p, err := tax.Path("influenza")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"disease", "infectious", "viral", "influenza"}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("path = %v", p)
		}
	}
	if !tax.Contains("measles") || tax.Contains("cancer") {
		t.Fatal("Contains wrong")
	}
}

func TestTaxonomyValidation(t *testing.T) {
	if _, err := NewTaxonomy(""); err == nil {
		t.Fatal("empty root accepted")
	}
	tax := diseases()
	if err := tax.Add("viral", "disease"); err == nil {
		t.Fatal("duplicate node accepted")
	}
	if err := tax.Add("x", "nothere"); err == nil {
		t.Fatal("missing parent accepted")
	}
	if err := tax.Add("", "disease"); err == nil {
		t.Fatal("empty child accepted")
	}
}

func TestTaxonomyDistances(t *testing.T) {
	tax := diseases()
	cases := []struct {
		a, b string
		want float64
	}{
		{"influenza", "influenza", 0},
		// influenza (d4) vs measles (d4): LCA viral (d3): 1 − 6/8.
		{"influenza", "measles", 0.25},
		// influenza (4) vs tuberculosis (4): LCA infectious (2): 1 − 4/8.
		{"influenza", "tuberculosis", 0.5},
		// influenza (4) vs diabetes (3): LCA disease (1): 1 − 2/7.
		{"influenza", "diabetes", 1 - 2.0/7.0},
		// parent-child: viral (3) vs influenza (4): LCA viral: 1 − 6/7.
		{"viral", "influenza", 1 - 6.0/7.0},
	}
	for _, c := range cases {
		d, err := tax.Distance(c.a, c.b)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(d-c.want) > 1e-12 {
			t.Fatalf("d(%s,%s) = %v, want %v", c.a, c.b, d, c.want)
		}
		// Symmetry.
		d2, _ := tax.Distance(c.b, c.a)
		if d2 != d {
			t.Fatalf("asymmetric d(%s,%s)", c.a, c.b)
		}
	}
	if _, err := tax.Distance("influenza", "cancer"); err == nil {
		t.Fatal("unknown value accepted")
	}
}

func TestTaxonomyOrderingOfSimilarity(t *testing.T) {
	// Closer taxonomy relatives must be closer in distance.
	tax := diseases()
	sibling, _ := tax.Distance("influenza", "measles")
	cousin, _ := tax.Distance("influenza", "tuberculosis")
	far, _ := tax.Distance("influenza", "diabetes")
	if !(sibling < cousin && cousin < far) {
		t.Fatalf("ordering violated: %v %v %v", sibling, cousin, far)
	}
}

func TestTagDistanceMatchesPlaintext(t *testing.T) {
	tax := diseases()
	enc := detenc.NewEncryptor(detenc.KeyFromBytes([]byte("group key")), "diag")
	values := []string{"influenza", "measles", "tuberculosis", "diabetes", "viral", "disease"}
	for _, a := range values {
		for _, b := range values {
			ta, err := PathTags(tax, enc, a)
			if err != nil {
				t.Fatal(err)
			}
			tb, err := PathTags(tax, enc, b)
			if err != nil {
				t.Fatal(err)
			}
			want, _ := tax.Distance(a, b)
			if got := TagDistance(ta, tb); math.Abs(got-want) > 1e-12 {
				t.Fatalf("tag distance (%s,%s) = %v, want %v", a, b, got, want)
			}
		}
	}
	if _, err := PathTags(tax, enc, "unknown"); err == nil {
		t.Fatal("unknown value tagged")
	}
}

func TestTagDistanceCrossSite(t *testing.T) {
	// Independently constructed encryptors under the same key agree.
	tax := diseases()
	key := detenc.KeyFromBytes([]byte("shared"))
	a, _ := PathTags(tax, detenc.NewEncryptor(key, "diag"), "influenza")
	b, _ := PathTags(tax, detenc.NewEncryptor(key, "diag"), "influenza")
	if TagDistance(a, b) != 0 {
		t.Fatal("same value across sites at distance > 0")
	}
}

func TestFingerprintsDistinguishStructures(t *testing.T) {
	o1 := MustNewOrdering("a", "b", "c")
	o2 := MustNewOrdering("a", "c", "b")
	if o1.Fingerprint() == o2.Fingerprint() {
		t.Fatal("ordering fingerprints collide")
	}
	t1 := diseases()
	t2 := MustNewTaxonomy("disease").MustAdd("infectious", "disease")
	if t1.Fingerprint() == t2.Fingerprint() {
		t.Fatal("taxonomy fingerprints collide")
	}
	// Deterministic across calls despite map iteration.
	if t1.Fingerprint() != diseases().Fingerprint() {
		t.Fatal("taxonomy fingerprint not deterministic")
	}
}

func TestQuickTaxonomyDistanceBounds(t *testing.T) {
	tax := diseases()
	vals := []string{"disease", "infectious", "viral", "influenza", "measles", "bacterial", "tuberculosis", "chronic", "diabetes"}
	s := rng.NewXoshiro(rng.SeedFromUint64(1))
	f := func(ai, bi uint8) bool {
		a := vals[int(ai)%len(vals)]
		b := vals[int(bi)%len(vals)]
		d, err := tax.Distance(a, b)
		if err != nil {
			return false
		}
		if a == b {
			return d == 0
		}
		return d > 0 && d < 1
	}
	_ = s
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
