package linkage

import (
	"testing"

	"ppclust/internal/dataset"
	"ppclust/internal/dissim"
)

func fixture() (*dissim.Matrix, []dataset.ObjectID) {
	// Objects: A1, A2 (site A), B1, B2 (site B).
	// A1–B1 are near-duplicates (0.05); A2–B2 are (0.1); others far.
	m := dissim.New(4)
	m.Set(1, 0, 0.9) // A1-A2
	m.Set(2, 0, 0.05)
	m.Set(2, 1, 0.8)
	m.Set(3, 0, 0.85)
	m.Set(3, 1, 0.1)
	m.Set(3, 2, 0.95)
	ids := []dataset.ObjectID{
		{Site: "A", Index: 0}, {Site: "A", Index: 1},
		{Site: "B", Index: 0}, {Site: "B", Index: 1},
	}
	return m, ids
}

func TestLinkFindsPlantedPairs(t *testing.T) {
	m, ids := fixture()
	matches, err := Link(m, ids, Options{Threshold: 0.2, CrossSiteOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 2 {
		t.Fatalf("matches: %+v", matches)
	}
	// Ascending distance: A1-B1 first.
	if matches[0].Distance != 0.05 || PairKey(matches[0].A, matches[0].B) != "A1|B1" {
		t.Fatalf("first match: %+v", matches[0])
	}
	if PairKey(matches[1].A, matches[1].B) != "A2|B2" {
		t.Fatalf("second match: %+v", matches[1])
	}
}

func TestCrossSiteOnlyFilter(t *testing.T) {
	m, ids := fixture()
	m.Set(1, 0, 0.01) // make A1-A2 near-duplicates too
	all, err := Link(m, ids, Options{Threshold: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	cross, err := Link(m, ids, Options{Threshold: 0.2, CrossSiteOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 || len(cross) != 2 {
		t.Fatalf("all=%d cross=%d", len(all), len(cross))
	}
}

func TestLimitKeepsBest(t *testing.T) {
	m, ids := fixture()
	matches, err := Link(m, ids, Options{Threshold: 1.0, Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 || matches[0].Distance != 0.05 {
		t.Fatalf("limited matches: %+v", matches)
	}
}

func TestLinkValidation(t *testing.T) {
	m, ids := fixture()
	if _, err := Link(m, ids[:2], Options{Threshold: 1}); err == nil {
		t.Fatal("id length mismatch accepted")
	}
	if _, err := Link(m, ids, Options{Threshold: -1}); err == nil {
		t.Fatal("negative threshold accepted")
	}
}

func TestEvaluate(t *testing.T) {
	m, ids := fixture()
	matches, _ := Link(m, ids, Options{Threshold: 0.2, CrossSiteOnly: true})
	truth := map[string]bool{
		PairKey(dataset.ObjectID{Site: "A", Index: 0}, dataset.ObjectID{Site: "B", Index: 0}): true,
		PairKey(dataset.ObjectID{Site: "A", Index: 1}, dataset.ObjectID{Site: "B", Index: 1}): true,
	}
	p, r, f1 := Evaluate(matches, truth)
	if p != 1 || r != 1 || f1 != 1 {
		t.Fatalf("perfect linkage scored %v/%v/%v", p, r, f1)
	}
	// A spurious truth pair lowers recall.
	truth[PairKey(ids[0], ids[3])] = true
	_, r, _ = Evaluate(matches, truth)
	if r >= 1 {
		t.Fatalf("recall %v should drop", r)
	}
	// No matches.
	p, r, f1 = Evaluate(nil, truth)
	if p != 0 || r != 0 || f1 != 0 {
		t.Fatal("empty matches against non-empty truth should score 0")
	}
	p, r, f1 = Evaluate(nil, nil)
	if p != 1 || r != 1 || f1 != 1 {
		t.Fatal("empty/empty should score 1")
	}
}

func TestPairKeyCanonical(t *testing.T) {
	a := dataset.ObjectID{Site: "A", Index: 0}
	b := dataset.ObjectID{Site: "B", Index: 4}
	if PairKey(a, b) != PairKey(b, a) {
		t.Fatal("PairKey not symmetric")
	}
}
