// Package linkage implements privacy-preserving record linkage on top of
// the dissimilarity matrix — one of the additional applications the paper
// claims for its protocols ("our dissimilarity matrix construction
// algorithm is also applicable to privacy preserving record linkage").
//
// Given the privately constructed global matrix, the third party reports
// cross-site object pairs whose dissimilarity falls below a threshold as
// candidate links, without ever seeing the underlying attribute values.
package linkage

import (
	"fmt"
	"sort"

	"ppclust/internal/dataset"
	"ppclust/internal/dissim"
)

// Match is one candidate link between two objects.
type Match struct {
	A, B     dataset.ObjectID
	Distance float64
}

// Options tunes Link.
type Options struct {
	// Threshold is the maximum dissimilarity for a candidate link.
	Threshold float64
	// CrossSiteOnly drops within-site pairs (the usual record-linkage
	// setting: each site has already deduplicated its own data).
	CrossSiteOnly bool
	// Limit caps the number of returned matches (0 = unlimited). Matches
	// are returned in ascending distance order, so the cap keeps the best.
	Limit int
}

// Link scans the matrix for pairs within the threshold. ids must be the
// global object ordering of the matrix (dataset.GlobalIndex).
func Link(m *dissim.Matrix, ids []dataset.ObjectID, opts Options) ([]Match, error) {
	if len(ids) != m.N() {
		return nil, fmt.Errorf("linkage: %d ids for %d objects", len(ids), m.N())
	}
	if opts.Threshold < 0 {
		return nil, fmt.Errorf("linkage: negative threshold %v", opts.Threshold)
	}
	var out []Match
	for i := 1; i < m.N(); i++ {
		for j := 0; j < i; j++ {
			if opts.CrossSiteOnly && ids[i].Site == ids[j].Site {
				continue
			}
			if d := m.At(i, j); d <= opts.Threshold {
				out = append(out, Match{A: ids[j], B: ids[i], Distance: d})
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Distance != out[b].Distance {
			return out[a].Distance < out[b].Distance
		}
		if out[a].A != out[b].A {
			return less(out[a].A, out[b].A)
		}
		return less(out[a].B, out[b].B)
	})
	if opts.Limit > 0 && len(out) > opts.Limit {
		out = out[:opts.Limit]
	}
	return out, nil
}

func less(a, b dataset.ObjectID) bool {
	if a.Site != b.Site {
		return a.Site < b.Site
	}
	return a.Index < b.Index
}

// PairKey canonicalizes an unordered object pair for set membership.
func PairKey(a, b dataset.ObjectID) string {
	if less(b, a) {
		a, b = b, a
	}
	return a.String() + "|" + b.String()
}

// Evaluate scores matches against a ground-truth set of linked pairs,
// returning precision, recall and F1.
func Evaluate(matches []Match, truth map[string]bool) (precision, recall, f1 float64) {
	if len(matches) == 0 {
		if len(truth) == 0 {
			return 1, 1, 1
		}
		return 0, 0, 0
	}
	tp := 0
	for _, m := range matches {
		if truth[PairKey(m.A, m.B)] {
			tp++
		}
	}
	precision = float64(tp) / float64(len(matches))
	if len(truth) > 0 {
		recall = float64(tp) / float64(len(truth))
	}
	if precision+recall > 0 {
		f1 = 2 * precision * recall / (precision + recall)
	}
	return precision, recall, f1
}
