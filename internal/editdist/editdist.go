// Package editdist implements the edit (Levenshtein) distance used to
// compare alphanumeric attributes, including the character-comparison-matrix
// form that the third party evaluates in the İnan et al. protocol.
//
// The paper (Section 2.3) observes that the edit-distance DP does not need
// the input strings themselves: an equality matrix over all character pairs
// — the "character comparison matrix" (CCM) — is equally expressive. Data
// holders compute distances directly from strings; the third party, which
// must never see the strings, computes them from privately constructed CCMs
// (Figure 10).
package editdist

import (
	"fmt"

	"ppclust/internal/alphabet"
)

// Costs parameterizes the three edit operations. The paper uses unit costs
// ("the number of operations required to transform a source string into a
// target string"); UnitCosts reproduces that.
type Costs struct {
	Insert     int // cost of inserting a character
	Delete     int // cost of deleting a character
	Substitute int // cost of replacing a character by a different one
}

// UnitCosts is the paper's cost model: every operation costs 1.
var UnitCosts = Costs{Insert: 1, Delete: 1, Substitute: 1}

// valid reports whether the costs are usable (non-negative, substitution
// not free).
func (c Costs) valid() error {
	if c.Insert < 0 || c.Delete < 0 || c.Substitute < 0 {
		return fmt.Errorf("editdist: negative cost %+v", c)
	}
	return nil
}

// Distance returns the edit distance between symbol vectors a and b under
// unit costs.
func Distance(a, b []alphabet.Symbol) int {
	return DistanceCosts(a, b, UnitCosts)
}

// DistanceCosts returns the edit distance between a and b under the given
// cost model. The costs are validated on every call; hot loops that run
// the DP n²/2 times should construct a Scratch once instead, which
// validates at construction and reuses its two DP rows across calls.
func DistanceCosts(a, b []alphabet.Symbol, costs Costs) int {
	s, err := NewScratch(costs)
	if err != nil {
		panic(err)
	}
	return s.Distance(a, b)
}

// Scratch is a reusable edit-distance evaluator: the cost model is
// validated once at construction and the two DP rows are grown on demand
// and reused, so repeated Distance/FromCCM calls allocate nothing. Not
// safe for concurrent use — parallel evaluators hold one Scratch per
// worker.
type Scratch struct {
	costs     Costs
	prev, cur []int
}

// NewScratch validates the cost model once and returns a reusable
// evaluator over it.
func NewScratch(costs Costs) (*Scratch, error) {
	if err := costs.valid(); err != nil {
		return nil, err
	}
	return &Scratch{costs: costs}, nil
}

// MustUnitScratch returns a Scratch over the paper's unit costs, which
// are always valid.
func MustUnitScratch() *Scratch {
	s, err := NewScratch(UnitCosts)
	if err != nil {
		panic(err) // unreachable: UnitCosts is valid
	}
	return s
}

// Costs returns the validated cost model.
func (s *Scratch) Costs() Costs { return s.costs }

// grow sizes the two DP rows for a column count of cols.
func (s *Scratch) grow(cols int) {
	if cap(s.prev) < cols+1 {
		s.prev = make([]int, cols+1)
		s.cur = make([]int, cols+1)
	}
	s.prev = s.prev[:cols+1]
	s.cur = s.cur[:cols+1]
}

// Distance returns the edit distance between symbol vectors a and b under
// the scratch's cost model, without allocating.
func (s *Scratch) Distance(a, b []alphabet.Symbol) int {
	s.grow(len(b))
	prev, cur, costs := s.prev, s.cur, s.costs
	for j := range prev {
		prev[j] = j * costs.Insert
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i * costs.Delete
		ai := a[i-1]
		for j := 1; j <= len(b); j++ {
			sub := prev[j-1]
			if ai != b[j-1] {
				sub += costs.Substitute
			}
			cur[j] = min3(prev[j]+costs.Delete, cur[j-1]+costs.Insert, sub)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// FromCCM runs the edit-distance DP over a character comparison matrix
// without allocating — the third party's per-pair evaluation (Figure 10),
// called n²/2 times per alphanumeric attribute.
func (s *Scratch) FromCCM(m CCM) int {
	s.grow(m.Cols)
	prev, cur, costs := s.prev, s.cur, s.costs
	for j := range prev {
		prev[j] = j * costs.Insert
	}
	for i := 1; i <= m.Rows; i++ {
		cur[0] = i * costs.Delete
		row := m.Cell[(i-1)*m.Cols : i*m.Cols]
		for j := 1; j <= m.Cols; j++ {
			sub := prev[j-1]
			if row[j-1] != 0 {
				sub += costs.Substitute
			}
			cur[j] = min3(prev[j]+costs.Delete, cur[j-1]+costs.Insert, sub)
		}
		prev, cur = cur, prev
	}
	return prev[m.Cols]
}

// DistanceStrings encodes s and t over a and returns their edit distance
// under unit costs.
func DistanceStrings(a *alphabet.Alphabet, s, t string) (int, error) {
	sv, err := a.Encode(s)
	if err != nil {
		return 0, err
	}
	tv, err := a.Encode(t)
	if err != nil {
		return 0, err
	}
	return Distance(sv, tv), nil
}

// CCM is a character comparison matrix: At(i, j) == 0 iff the ith character
// of the row string equals the jth character of the column string, 1
// otherwise (paper Section 2.3). Dimensions are carried explicitly so that
// empty strings — whose comparison matrix has a zero extent but a well
// defined edit distance — survive the round trip through the protocol.
type CCM struct {
	Rows, Cols int
	// Cell holds Rows×Cols entries in row-major order, each 0 or 1.
	Cell []uint8
}

// NewCCM allocates a zeroed rows×cols CCM.
func NewCCM(rows, cols int) CCM {
	if rows < 0 || cols < 0 {
		panic("editdist: negative CCM dimension")
	}
	return CCM{Rows: rows, Cols: cols, Cell: make([]uint8, rows*cols)}
}

// At returns the cell at row i, column j.
func (m CCM) At(i, j int) uint8 { return m.Cell[i*m.Cols+j] }

// Set assigns the cell at row i, column j.
func (m CCM) Set(i, j int, v uint8) { m.Cell[i*m.Cols+j] = v }

// BuildCCM constructs the plaintext CCM for rows-string r and cols-string c:
// At(i, j) = 0 iff r[i] == c[j]. The third party never calls this — it
// obtains CCMs through the privacy-preserving protocol — but local parties
// and tests use it as the reference.
func BuildCCM(r, c []alphabet.Symbol) CCM {
	m := NewCCM(len(r), len(c))
	for i := range r {
		for j := range c {
			if r[i] != c[j] {
				m.Set(i, j, 1)
			}
		}
	}
	return m
}

// Validate checks that the cell storage matches the dimensions and is
// strictly 0/1 valued.
func (m CCM) Validate() error {
	if m.Rows < 0 || m.Cols < 0 {
		return fmt.Errorf("editdist: negative CCM dimensions %dx%d", m.Rows, m.Cols)
	}
	if len(m.Cell) != m.Rows*m.Cols {
		return fmt.Errorf("editdist: CCM storage has %d cells, want %d", len(m.Cell), m.Rows*m.Cols)
	}
	for i, v := range m.Cell {
		if v > 1 {
			return fmt.Errorf("editdist: CCM cell %d = %d, want 0 or 1", i, v)
		}
	}
	return nil
}

// FromCCM returns the edit distance implied by a CCM under unit costs: the
// third party's computation in Figure 10 of the paper.
func FromCCM(m CCM) int {
	return FromCCMCosts(m, UnitCosts)
}

// FromCCMCosts runs the edit-distance DP over a CCM with the given costs.
// Rows of the CCM play the role of one string's positions, columns the
// other's; for symmetric cost models the orientation does not matter.
// Like DistanceCosts, this validates per call — batch evaluators use a
// Scratch.
func FromCCMCosts(m CCM, costs Costs) int {
	s, err := NewScratch(costs)
	if err != nil {
		panic(err)
	}
	return s.FromCCM(m)
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
