package editdist

import (
	"testing"
	"testing/quick"

	"ppclust/internal/alphabet"
	"ppclust/internal/rng"
)

func dist(t *testing.T, a *alphabet.Alphabet, s, u string) int {
	t.Helper()
	d, err := DistanceStrings(a, s, u)
	if err != nil {
		t.Fatalf("DistanceStrings(%q,%q): %v", s, u, err)
	}
	return d
}

func TestKnownDistances(t *testing.T) {
	cases := []struct {
		a    *alphabet.Alphabet
		s, t string
		want int
	}{
		{alphabet.Lower, "", "", 0},
		{alphabet.Lower, "abc", "abc", 0},
		{alphabet.Lower, "abc", "", 3},
		{alphabet.Lower, "", "abc", 3},
		{alphabet.Lower, "kitten", "sitting", 3},
		{alphabet.Lower, "flaw", "lawn", 2},
		{alphabet.Lower, "intention", "execution", 5},
		{alphabet.DNA, "GATTACA", "GCATGCT", 4},
		{alphabet.DNA, "ACGT", "ACGT", 0},
		{alphabet.DNA, "A", "T", 1},
		{alphabet.DNA, "AC", "CA", 2},
	}
	for _, c := range cases {
		if got := dist(t, c.a, c.s, c.t); got != c.want {
			t.Errorf("d(%q,%q) = %d, want %d", c.s, c.t, got, c.want)
		}
	}
}

// naive is an independent full-matrix reference implementation.
func naive(a, b []alphabet.Symbol) int {
	dp := make([][]int, len(a)+1)
	for i := range dp {
		dp[i] = make([]int, len(b)+1)
		dp[i][0] = i
	}
	for j := 0; j <= len(b); j++ {
		dp[0][j] = j
	}
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			sub := dp[i-1][j-1]
			if a[i-1] != b[j-1] {
				sub++
			}
			d := dp[i-1][j] + 1
			ins := dp[i][j-1] + 1
			m := sub
			if d < m {
				m = d
			}
			if ins < m {
				m = ins
			}
			dp[i][j] = m
		}
	}
	return dp[len(a)][len(b)]
}

func randStrings(n, maxLen int, a *alphabet.Alphabet, seed uint64) [][]alphabet.Symbol {
	s := rng.NewXoshiro(rng.SeedFromUint64(seed))
	out := make([][]alphabet.Symbol, n)
	for i := range out {
		l := int(rng.Uint64n(s, uint64(maxLen+1)))
		v := make([]alphabet.Symbol, l)
		for j := range v {
			v[j] = alphabet.Symbol(rng.Symbol(s, a.Size()))
		}
		out[i] = v
	}
	return out
}

func TestMatchesNaiveReference(t *testing.T) {
	strs := randStrings(40, 18, alphabet.DNA, 1)
	for i := range strs {
		for j := range strs {
			got := Distance(strs[i], strs[j])
			want := naive(strs[i], strs[j])
			if got != want {
				t.Fatalf("d(%v,%v) = %d, want %d", strs[i], strs[j], got, want)
			}
		}
	}
}

func TestMetricProperties(t *testing.T) {
	strs := randStrings(14, 10, alphabet.DNA, 2)
	for i := range strs {
		if Distance(strs[i], strs[i]) != 0 {
			t.Fatalf("d(x,x) != 0 for %v", strs[i])
		}
		for j := range strs {
			dij := Distance(strs[i], strs[j])
			if dij != Distance(strs[j], strs[i]) {
				t.Fatalf("asymmetric distance for %v,%v", strs[i], strs[j])
			}
			if i != j && len(strs[i]) != len(strs[j]) && dij == 0 {
				t.Fatalf("distinct-length strings at distance 0")
			}
			for k := range strs {
				if Distance(strs[i], strs[k]) > dij+Distance(strs[j], strs[k]) {
					t.Fatalf("triangle inequality violated at %d,%d,%d", i, j, k)
				}
			}
		}
	}
}

func TestCCMEquivalence(t *testing.T) {
	// Core protocol property: edit distance from the CCM must equal edit
	// distance from the strings, for all pairs.
	strs := randStrings(25, 15, alphabet.Protein, 3)
	for i := range strs {
		for j := range strs {
			ccm := BuildCCM(strs[i], strs[j])
			if err := ccm.Validate(); err != nil {
				t.Fatal(err)
			}
			if got, want := FromCCM(ccm), Distance(strs[i], strs[j]); got != want {
				t.Fatalf("FromCCM = %d, Distance = %d for pair %d,%d", got, want, i, j)
			}
		}
	}
}

func TestCCMDims(t *testing.T) {
	s := alphabet.DNA.MustEncode("ACG")
	u := alphabet.DNA.MustEncode("TT")
	ccm := BuildCCM(s, u)
	if ccm.Rows != 3 || ccm.Cols != 2 {
		t.Fatalf("dims = %d,%d, want 3,2", ccm.Rows, ccm.Cols)
	}
	if ccm.At(0, 1) != 1 { // 'A' vs 'T'
		t.Fatal("At(0,1) should be 1 for differing symbols")
	}
}

func TestCCMValidate(t *testing.T) {
	bad := CCM{Rows: 2, Cols: 2, Cell: []uint8{0, 1, 0}}
	if bad.Validate() == nil {
		t.Fatal("short storage accepted")
	}
	bad2 := CCM{Rows: 1, Cols: 2, Cell: []uint8{0, 2}}
	if bad2.Validate() == nil {
		t.Fatal("non-binary CCM accepted")
	}
	good := CCM{Rows: 2, Cols: 2, Cell: []uint8{0, 1, 1, 0}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if (CCM{}).Validate() != nil {
		t.Fatal("empty CCM rejected")
	}
}

func TestEmptyStringsViaCCM(t *testing.T) {
	// d("", t) must equal len(t): explicit dims preserve the non-empty
	// string's length even when the comparison matrix has no cells.
	u := alphabet.DNA.MustEncode("ACGT")
	if got := FromCCM(BuildCCM(nil, u)); got != 4 {
		t.Fatalf("d(\"\", ACGT) via CCM = %d, want 4", got)
	}
	if got := FromCCM(BuildCCM(u, nil)); got != 4 {
		t.Fatalf("d(ACGT, \"\") via CCM = %d, want 4", got)
	}
	if got := FromCCM(BuildCCM(nil, nil)); got != 0 {
		t.Fatalf("d(\"\",\"\") via CCM = %d, want 0", got)
	}
}

func TestCustomCosts(t *testing.T) {
	a := alphabet.Lower
	s, u := a.MustEncode("abc"), a.MustEncode("adc")
	// Substitution twice as expensive as insert+delete: distance becomes 2
	// via delete+insert rather than 3 via substitution... unit sub = 1.
	if got := DistanceCosts(s, u, Costs{Insert: 1, Delete: 1, Substitute: 3}); got != 2 {
		t.Fatalf("expensive substitution distance = %d, want 2", got)
	}
	if got := DistanceCosts(s, u, Costs{Insert: 1, Delete: 1, Substitute: 1}); got != 1 {
		t.Fatalf("unit distance = %d, want 1", got)
	}
	if got := FromCCMCosts(BuildCCM(s, u), Costs{Insert: 1, Delete: 1, Substitute: 3}); got != 2 {
		t.Fatal("FromCCMCosts disagrees with DistanceCosts")
	}
}

func TestNegativeCostsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative costs did not panic")
		}
	}()
	DistanceCosts(nil, nil, Costs{Insert: -1, Delete: 1, Substitute: 1})
}

func TestQuickCCMEquivalence(t *testing.T) {
	s := rng.NewXoshiro(rng.SeedFromUint64(4))
	f := func(alen, blen uint8) bool {
		a := make([]alphabet.Symbol, alen%12)
		b := make([]alphabet.Symbol, blen%12)
		for i := range a {
			a[i] = alphabet.Symbol(rng.Symbol(s, 4))
		}
		for i := range b {
			b[i] = alphabet.Symbol(rng.Symbol(s, 4))
		}
		return FromCCM(BuildCCM(a, b)) == Distance(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDistanceBounds(t *testing.T) {
	s := rng.NewXoshiro(rng.SeedFromUint64(5))
	f := func(alen, blen uint8) bool {
		a := make([]alphabet.Symbol, alen%20)
		b := make([]alphabet.Symbol, blen%20)
		for i := range a {
			a[i] = alphabet.Symbol(rng.Symbol(s, 4))
		}
		for i := range b {
			b[i] = alphabet.Symbol(rng.Symbol(s, 4))
		}
		d := Distance(a, b)
		lo := len(a) - len(b)
		if lo < 0 {
			lo = -lo
		}
		hi := len(a)
		if len(b) > hi {
			hi = len(b)
		}
		return d >= lo && d <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDistance32(b *testing.B) {
	strs := randStrings(2, 32, alphabet.DNA, 6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Distance(strs[0], strs[1])
	}
}

func BenchmarkFromCCM32(b *testing.B) {
	strs := randStrings(2, 32, alphabet.DNA, 7)
	ccm := BuildCCM(strs[0], strs[1])
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		FromCCM(ccm)
	}
}

// TestScratchMatchesOneShot checks the reusable evaluator against the
// allocating entry points across many random pairs, reusing one Scratch.
func TestScratchMatchesOneShot(t *testing.T) {
	s := rng.NewXoshiro(rng.SeedFromUint64(77))
	sc := MustUnitScratch()
	weighted, err := NewScratch(Costs{Insert: 2, Delete: 3, Substitute: 5})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 200; trial++ {
		a := make([]alphabet.Symbol, rng.Symbol(s, 20))
		b := make([]alphabet.Symbol, rng.Symbol(s, 20))
		for i := range a {
			a[i] = alphabet.Symbol(rng.Symbol(s, 4))
		}
		for i := range b {
			b[i] = alphabet.Symbol(rng.Symbol(s, 4))
		}
		if got, want := sc.Distance(a, b), Distance(a, b); got != want {
			t.Fatalf("Scratch.Distance = %d, want %d", got, want)
		}
		ccm := BuildCCM(a, b)
		if got, want := sc.FromCCM(ccm), FromCCM(ccm); got != want {
			t.Fatalf("Scratch.FromCCM = %d, want %d", got, want)
		}
		wc := weighted.Costs()
		if got, want := weighted.Distance(a, b), DistanceCosts(a, b, wc); got != want {
			t.Fatalf("weighted Scratch.Distance = %d, want %d", got, want)
		}
		if got, want := weighted.FromCCM(ccm), FromCCMCosts(ccm, wc); got != want {
			t.Fatalf("weighted Scratch.FromCCM = %d, want %d", got, want)
		}
	}
}

// TestScratchRejectsInvalidCosts checks validation happens once, at
// construction.
func TestScratchRejectsInvalidCosts(t *testing.T) {
	if _, err := NewScratch(Costs{Insert: -1, Delete: 1, Substitute: 1}); err == nil {
		t.Fatal("negative insert cost accepted")
	}
}
