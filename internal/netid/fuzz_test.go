package netid

import (
	"bytes"
	"encoding/binary"
	"errors"
	"net"
	"testing"
	"time"
)

// captureWrite runs one announce/send function against a net.Pipe and
// returns the exact bytes it put on the wire, so the fuzz corpora are
// seeded from the real writers rather than hand-maintained encodings.
func captureWrite(f *testing.F, write func(c net.Conn) error) []byte {
	f.Helper()
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	done := make(chan error, 1)
	go func() { done <- write(a) }()
	buf := make([]byte, 4096)
	b.SetReadDeadline(time.Now().Add(time.Second))
	n, err := b.Read(buf)
	if err != nil {
		f.Fatalf("capturing seed bytes: %v", err)
	}
	if err := <-done; err != nil {
		f.Fatalf("seed writer: %v", err)
	}
	return buf[:n]
}

// FuzzParseHello exercises every hello form — legacy, v1 session, v2
// sharded, v3 resume, v4 shard registration, and claimed-future versions —
// against arbitrary byte streams: the parser must never panic, and a hello
// it accepts must satisfy the documented field bounds and version
// classification invariants.
func FuzzParseHello(f *testing.F) {
	f.Add(captureWrite(f, func(c net.Conn) error { return Announce(c, "HolderA") }))
	f.Add(captureWrite(f, func(c net.Conn) error { return AnnounceSession(c, "HolderA", "tenant-7") }))
	f.Add(captureWrite(f, func(c net.Conn) error { return AnnounceSession(c, "B", "") }))
	f.Add(captureWrite(f, func(c net.Conn) error { return AnnounceSessionShard(c, "HolderA", "tenant-7", -1) }))
	f.Add(captureWrite(f, func(c net.Conn) error { return AnnounceSessionShard(c, "HolderA", "tenant-7", 3) }))
	f.Add(captureWrite(f, func(c net.Conn) error { return AnnounceResume(c, "HolderB", "tenant-9", 2, 5, 1234, 99) }))
	f.Add(captureWrite(f, func(c net.Conn) error { return AnnounceShardRegistration(c, "TP", "tenant-3", 2, 7, 41, 8) }))
	f.Add([]byte{magicExtended, 5, 1, 'H', 1, 's'}) // claimed-future version
	f.Add([]byte{magicExtended, 0, 1, 'H'})         // invalid version 0
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := ParseHello(bytes.NewReader(data))
		if err != nil {
			return
		}
		if h.Name == "" || len(h.Name) > maxName {
			t.Fatalf("accepted name %q outside (0, %d]", h.Name, maxName)
		}
		if len(h.Session) > maxSession {
			t.Fatalf("accepted session of %d bytes", len(h.Session))
		}
		if h.Version == 0 && (h.Session != "" || h.Lane != 0 || h.Epoch != 0 || h.Sent != 0 || h.Recv != 0) {
			t.Fatalf("legacy hello carries extended fields: %+v", h)
		}
		if h.Version < VersionSharded && h.Lane != 0 {
			t.Fatalf("version %d hello carries lane %d", h.Version, h.Lane)
		}
		if h.Resume() && h.ShardRegistration() {
			t.Fatalf("hello classifies as both resume and registration: %+v", h)
		}
	})
}

// FuzzParseReject exercises the ppc/reject frame parser: it must never
// panic, and a frame it accepts must decode to a RejectedError within the
// detail bound.
func FuzzParseReject(f *testing.F) {
	for _, seed := range []struct {
		code   RejectCode
		detail string
	}{
		{RejectQueueFull, "3 sessions active, queue of 2 full"},
		{RejectDraining, ""},
		{RejectResume, "watermark behind installed rows"},
	} {
		raw := captureWrite(f, func(c net.Conn) error { return SendReject(c, seed.code, seed.detail) })
		// SendReject's wire form starts with the status byte; parseReject
		// begins after it.
		f.Add(raw[1:])
	}
	f.Add([]byte{byte(RejectVersion), 0xFF, 0xFF}) // oversized detail length
	f.Fuzz(func(t *testing.T, data []byte) {
		err := parseReject(bytes.NewReader(data))
		if err == nil {
			t.Fatal("parseReject returned nil error")
		}
		var re *RejectedError
		if !errors.As(err, &re) {
			return // descriptive parse failure
		}
		if !errors.Is(err, ErrRejected) {
			t.Fatal("typed refusal not classified under ErrRejected")
		}
		if len(re.Detail) > maxRejectDetail {
			t.Fatalf("accepted detail of %d bytes", len(re.Detail))
		}
	})
}

// FuzzParseResumeGrant exercises the grant watermark parser: it must never
// panic, and an accepted body must round-trip through the writer.
func FuzzParseResumeGrant(f *testing.F) {
	raw := captureWrite(f, func(c net.Conn) error { return SendAcceptResume(c, 4321, 17) })
	f.Add(raw[1:]) // strip the status byte, as AwaitResumeGrant does
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		sent, recv, err := parseResumeGrant(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf [16]byte
		binary.BigEndian.PutUint64(buf[0:8], sent)
		binary.BigEndian.PutUint64(buf[8:16], recv)
		if !bytes.Equal(buf[:], data[:16]) {
			t.Fatalf("grant (%d, %d) does not round-trip", sent, recv)
		}
	})
}
