package netid

import (
	"errors"
	"net"
	"strings"
	"testing"
	"time"
)

func TestAnnounceAccept(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	done := make(chan error, 1)
	go func() { done <- Announce(a, "HolderA") }()
	name, err := Accept(b)
	if err != nil {
		t.Fatal(err)
	}
	if name != "HolderA" {
		t.Fatalf("name = %q", name)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestAnnounceValidation(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	if err := Announce(a, ""); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := Announce(a, strings.Repeat("x", 65)); err == nil {
		t.Fatal("oversized name accepted")
	}
}

func TestAcceptRejectsGarbage(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	go a.Write([]byte{0})
	if _, err := Accept(b); err == nil {
		t.Fatal("zero length accepted")
	}
}

func TestExtendedHelloRoundTrip(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	done := make(chan error, 1)
	go func() { done <- AnnounceSessionWithin(a, "HolderA", "tenant-7", time.Second) }()
	h, err := AcceptHelloWithin(b, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if h.Name != "HolderA" || h.Session != "tenant-7" || h.Version != Version {
		t.Fatalf("hello = %+v", h)
	}
	if !h.Extended() {
		t.Fatal("extended hello not marked extended")
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestLegacyHelloParsesAsDefaultSession(t *testing.T) {
	// Old single-session holders keep working against a multi-tenant
	// acceptor: their hello routes to the default (empty) session and no
	// admission response is owed.
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	done := make(chan error, 1)
	go func() { done <- Announce(a, "HolderB") }()
	h, err := AcceptHello(b)
	if err != nil {
		t.Fatal(err)
	}
	if h.Name != "HolderB" || h.Session != "" || h.Version != 0 {
		t.Fatalf("hello = %+v", h)
	}
	if h.Extended() {
		t.Fatal("legacy hello marked extended")
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestLegacyAcceptorRejectsExtendedHelloDescriptively(t *testing.T) {
	// A new holder announcing a session to an old single-session TP must
	// fail the old preamble with a descriptive error, not a misparse: the
	// extended magic is an invalid legacy name length.
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	go AnnounceSession(a, "HolderA", "tenant-7")
	_, err := Accept(b)
	if err == nil || !strings.Contains(err.Error(), "invalid name length 255") {
		t.Fatalf("err = %v, want invalid name length 255", err)
	}
}

func TestAnnounceSessionValidation(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	if err := AnnounceSession(a, "", "s"); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := AnnounceSession(a, "H", strings.Repeat("s", 65)); err == nil {
		t.Fatal("oversized session accepted")
	}
}

func TestFutureVersionHelloSurvivesParse(t *testing.T) {
	// A version-5 hello parses through the version-1 fields known to this
	// package (minus the lane and watermark fields, which versions 2–4
	// define) and reports its claimed version, so the acceptor can refuse
	// it with RejectVersion instead of a parse error.
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	go a.Write([]byte{magicExtended, 5, 1, 'H', 2, 's', '2'})
	h, err := AcceptHello(b)
	if err != nil {
		t.Fatal(err)
	}
	if h.Version != 5 || h.Name != "H" || h.Session != "s2" {
		t.Fatalf("hello = %+v", h)
	}
	if h.Lane != 0 {
		t.Fatalf("future hello claims lane %d, want 0", h.Lane)
	}
}

func TestAdmissionAcceptAndReject(t *testing.T) {
	for _, tc := range []struct {
		name  string
		serve func(c net.Conn) error
		check func(t *testing.T, err error)
	}{
		{"accept", SendAccept, func(t *testing.T, err error) {
			if err != nil {
				t.Fatalf("accept: %v", err)
			}
		}},
		{"reject", func(c net.Conn) error {
			return SendReject(c, RejectQueueFull, "3 sessions active, queue of 2 full")
		}, func(t *testing.T, err error) {
			if !errors.Is(err, ErrRejected) {
				t.Fatalf("err = %v, want ErrRejected", err)
			}
			var re *RejectedError
			if !errors.As(err, &re) {
				t.Fatalf("err = %v, want *RejectedError", err)
			}
			if re.Code != RejectQueueFull || re.Code.String() != "queue-full" {
				t.Fatalf("code = %v", re.Code)
			}
			if re.Detail != "3 sessions active, queue of 2 full" {
				t.Fatalf("detail = %q", re.Detail)
			}
			if re.Retryable() {
				t.Fatal("queue-full marked retryable")
			}
		}},
		{"reject-draining-retryable", func(c net.Conn) error {
			return SendReject(c, RejectDraining, "")
		}, func(t *testing.T, err error) {
			var re *RejectedError
			if !errors.As(err, &re) || !re.Retryable() {
				t.Fatalf("err = %v, want retryable draining refusal", err)
			}
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a, b := net.Pipe()
			defer a.Close()
			defer b.Close()
			done := make(chan error, 1)
			go func() { done <- tc.serve(a) }()
			tc.check(t, AwaitAdmission(b, time.Second))
			if err := <-done; err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestAwaitAdmissionTimesOutOnParkedConnection(t *testing.T) {
	// A server that parks the connection past the dialer's patience is a
	// deadline error, never a hang.
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	start := time.Now()
	err := AwaitAdmission(b, 30*time.Millisecond)
	if err == nil || errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v, want plain deadline error", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("deadline not applied")
	}
}

func TestAcceptWithinTimesOutOnSilentClient(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	start := time.Now()
	if _, err := AcceptWithin(b, 30*time.Millisecond); err == nil {
		t.Fatal("silent client accepted")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("deadline not applied")
	}
	// A prompt client still gets through, and the deadline is cleared.
	done := make(chan error, 1)
	go func() { done <- AnnounceWithin(a, "H", time.Second) }()
	name, err := AcceptWithin(b, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if name != "H" {
		t.Fatalf("name = %q", name)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestShardedHelloRoundTrip covers the version-2 preamble end to end: the
// control hello (shard -1, wire lane 0) and shard-lane hellos round-trip
// name, session, version and lane through AnnounceSessionShardWithin /
// AcceptHello.
func TestShardedHelloRoundTrip(t *testing.T) {
	for _, shard := range []int{-1, 0, 3} {
		a, b := net.Pipe()
		done := make(chan error, 1)
		go func() { done <- AnnounceSessionShardWithin(a, "HolderA", "tenant-7", shard, time.Second) }()
		h, err := AcceptHelloWithin(b, time.Second)
		if err != nil {
			t.Fatalf("shard %d: %v", shard, err)
		}
		if h.Name != "HolderA" || h.Session != "tenant-7" || h.Version != VersionSharded {
			t.Fatalf("shard %d: hello = %+v", shard, h)
		}
		if h.Lane != shard+1 {
			t.Fatalf("shard %d: lane = %d, want %d", shard, h.Lane, shard+1)
		}
		if !h.Extended() {
			t.Fatalf("shard %d: sharded hello not marked extended", shard)
		}
		if err := <-done; err != nil {
			t.Fatal(err)
		}
		a.Close()
		b.Close()
	}
}

func TestAnnounceSessionShardValidation(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	if err := AnnounceSessionShard(a, "H", "s", -2); err == nil {
		t.Fatal("shard -2 accepted")
	}
	if err := AnnounceSessionShard(a, "H", "s", MaxShards); err == nil {
		t.Fatalf("shard %d accepted", MaxShards)
	}
}

// TestRoutingAdmission: the routing accept carries the session's shard
// count to the holder; rejects flow through the same typed path as the
// version-1 admission; and a plain version-1 accept (no count byte) is a
// descriptive error, never a misparse or a hang.
func TestRoutingAdmission(t *testing.T) {
	serve := func(f func(c net.Conn) error) (net.Conn, chan error) {
		a, b := net.Pipe()
		t.Cleanup(func() { a.Close(); b.Close() })
		done := make(chan error, 1)
		go func() { done <- f(a) }()
		return b, done
	}

	b, done := serve(func(c net.Conn) error { return SendAcceptRouting(c, 4) })
	k, err := AwaitAdmissionRouting(b, time.Second)
	if err != nil || k != 4 {
		t.Fatalf("routing accept: k=%d err=%v, want 4", k, err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	b, done = serve(func(c net.Conn) error { return SendReject(c, RejectVersion, "no") })
	if _, err := AwaitAdmissionRouting(b, time.Second); !errors.Is(err, ErrRejected) {
		t.Fatalf("routing reject: %v, want ErrRejected", err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	// A v1 accept closes (or stalls) before the count byte arrives.
	b, done = serve(func(c net.Conn) error {
		if err := SendAccept(c); err != nil {
			return err
		}
		return c.Close()
	})
	if k, err := AwaitAdmissionRouting(b, time.Second); err == nil {
		t.Fatalf("count-less accept parsed as %d shards", k)
	}
	<-done
}

func TestSendAcceptRoutingValidation(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	if err := SendAcceptRouting(a, 0); err == nil {
		t.Fatal("0 shards accepted")
	}
	if err := SendAcceptRouting(a, MaxShards+1); err == nil {
		t.Fatalf("%d shards accepted", MaxShards+1)
	}
}

func TestResumeHelloRoundTrip(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	done := make(chan error, 1)
	go func() {
		done <- AnnounceResumeWithin(a, "HolderB", "tenant-9", 2, 5, 1234, 99, time.Second)
	}()
	h, err := AcceptHelloWithin(b, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	want := Hello{Name: "HolderB", Session: "tenant-9", Version: VersionResume,
		Lane: 3, Epoch: 5, Sent: 1234, Recv: 99}
	if h != want {
		t.Fatalf("hello = %+v, want %+v", h, want)
	}
	if !h.Resume() || !h.Extended() {
		t.Fatal("v3 hello must report Resume and Extended")
	}
}

func TestResumeHelloControlLane(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	go AnnounceResume(a, "HolderA", "s", -1, 1, 7, 7)
	h, err := AcceptHello(b)
	if err != nil {
		t.Fatal(err)
	}
	if h.Lane != 0 {
		t.Fatalf("control lane = %d, want 0", h.Lane)
	}
}

func TestResumeGrantRoundTrip(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	done := make(chan error, 1)
	go func() { done <- SendAcceptResume(a, 4321, 17) }()
	sent, recv, err := AwaitResumeGrant(b, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if sent != 4321 || recv != 17 {
		t.Fatalf("grant = (%d, %d)", sent, recv)
	}
}

func TestResumeGrantReject(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	go SendReject(a, RejectResume, "watermark behind installed rows")
	_, _, err := AwaitResumeGrant(b, time.Second)
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v, want ErrRejected", err)
	}
	var re *RejectedError
	if !errors.As(err, &re) || re.Code != RejectResume {
		t.Fatalf("err = %v, want RejectResume", err)
	}
	if re.Code.String() != "resume" {
		t.Fatalf("code string = %q", re.Code.String())
	}
	if re.Retryable() {
		t.Fatal("resume reject must not be retryable")
	}
}

// TestFutureVersionPassthrough pins the forward-compat contract: a hello
// claiming a version newer than VersionShardProc is returned intact with
// its claimed version and no extra fields consumed, so the acceptor can
// refuse it (RejectVersion) without this layer guessing at the layout.
func TestFutureVersionPassthrough(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	go a.Write([]byte{0xFF, 5, 1, 'H', 1, 's'})
	h, err := AcceptHello(b)
	if err != nil {
		t.Fatal(err)
	}
	if h.Version != 5 || h.Name != "H" || h.Session != "s" {
		t.Fatalf("hello = %+v", h)
	}
	if h.Resume() || h.ShardRegistration() {
		t.Fatal("future version must not classify as resume or registration")
	}
}

// TestShardRegistrationRoundTrip covers the version-4 preamble: the
// coordinator's shard-registration hello round-trips name, session, shard
// lane, epoch and watermarks through AnnounceShardRegistrationWithin /
// AcceptHello, and classifies as a registration (never a holder resume).
func TestShardRegistrationRoundTrip(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	done := make(chan error, 1)
	go func() {
		done <- AnnounceShardRegistrationWithin(a, "TP", "tenant-3", 2, 7, 41, 8, time.Second)
	}()
	h, err := AcceptHelloWithin(b, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	want := Hello{Name: "TP", Session: "tenant-3", Version: VersionShardProc,
		Lane: 3, Epoch: 7, Sent: 41, Recv: 8}
	if h != want {
		t.Fatalf("hello = %+v, want %+v", h, want)
	}
	if !h.ShardRegistration() || !h.Extended() {
		t.Fatal("v4 hello must report ShardRegistration and Extended")
	}
	if h.Resume() {
		t.Fatal("v4 hello must not classify as a holder resume")
	}
}

func TestAnnounceShardRegistrationValidation(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	if err := AnnounceShardRegistration(a, "TP", "s", -1, 0, 0, 0); err == nil {
		t.Fatal("shard -1 accepted (workers have no control lane)")
	}
	if err := AnnounceShardRegistration(a, "TP", "s", MaxShards, 0, 0, 0); err == nil {
		t.Fatalf("shard %d accepted", MaxShards)
	}
	if err := AnnounceShardRegistration(a, "", "s", 0, 0, 0, 0); err == nil {
		t.Fatal("empty name accepted")
	}
}
