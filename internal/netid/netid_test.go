package netid

import (
	"net"
	"strings"
	"testing"
	"time"
)

func TestAnnounceAccept(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	done := make(chan error, 1)
	go func() { done <- Announce(a, "HolderA") }()
	name, err := Accept(b)
	if err != nil {
		t.Fatal(err)
	}
	if name != "HolderA" {
		t.Fatalf("name = %q", name)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestAnnounceValidation(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	if err := Announce(a, ""); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := Announce(a, strings.Repeat("x", 65)); err == nil {
		t.Fatal("oversized name accepted")
	}
}

func TestAcceptRejectsGarbage(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	go a.Write([]byte{0})
	if _, err := Accept(b); err == nil {
		t.Fatal("zero length accepted")
	}
}

func TestAcceptWithinTimesOutOnSilentClient(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	start := time.Now()
	if _, err := AcceptWithin(b, 30*time.Millisecond); err == nil {
		t.Fatal("silent client accepted")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("deadline not applied")
	}
	// A prompt client still gets through, and the deadline is cleared.
	done := make(chan error, 1)
	go func() { done <- AnnounceWithin(a, "H", time.Second) }()
	name, err := AcceptWithin(b, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if name != "H" {
		t.Fatalf("name = %q", name)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
