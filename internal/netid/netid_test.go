package netid

import (
	"net"
	"strings"
	"testing"
)

func TestAnnounceAccept(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	done := make(chan error, 1)
	go func() { done <- Announce(a, "HolderA") }()
	name, err := Accept(b)
	if err != nil {
		t.Fatal(err)
	}
	if name != "HolderA" {
		t.Fatalf("name = %q", name)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestAnnounceValidation(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	if err := Announce(a, ""); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := Announce(a, strings.Repeat("x", 65)); err == nil {
		t.Fatal("oversized name accepted")
	}
}

func TestAcceptRejectsGarbage(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	go a.Write([]byte{0})
	if _, err := Accept(b); err == nil {
		t.Fatal("zero length accepted")
	}
}
