// Package netid is the tiny connection-labeling preamble the TCP
// deployment tools use: the dialing party announces its protocol name
// before the session handshake so the acceptor can route the connection.
package netid

import (
	"fmt"
	"io"
	"net"
	"time"
)

// maxName bounds announced names.
const maxName = 64

// Announce writes the caller's party name on a fresh connection.
func Announce(conn net.Conn, name string) error {
	if name == "" || len(name) > maxName {
		return fmt.Errorf("netid: invalid name %q", name)
	}
	buf := append([]byte{byte(len(name))}, name...)
	_, err := conn.Write(buf)
	return err
}

// Accept reads the peer's announced name from a fresh connection.
func Accept(conn net.Conn) (string, error) {
	var l [1]byte
	if _, err := io.ReadFull(conn, l[:]); err != nil {
		return "", fmt.Errorf("netid: reading name length: %w", err)
	}
	if l[0] == 0 || int(l[0]) > maxName {
		return "", fmt.Errorf("netid: invalid name length %d", l[0])
	}
	name := make([]byte, l[0])
	if _, err := io.ReadFull(conn, name); err != nil {
		return "", fmt.Errorf("netid: reading name: %w", err)
	}
	return string(name), nil
}

// AnnounceWithin is Announce under a write deadline: a peer that accepts
// the connection but never drains the socket cannot wedge session setup.
// The deadline is cleared before returning so the session owns the
// connection's timeout policy afterwards.
func AnnounceWithin(conn net.Conn, name string, timeout time.Duration) error {
	if err := conn.SetWriteDeadline(time.Now().Add(timeout)); err != nil {
		return err
	}
	if err := Announce(conn, name); err != nil {
		return err
	}
	return conn.SetWriteDeadline(time.Time{})
}

// AcceptWithin is Accept under a read deadline: a client that connects
// and goes silent fails the preamble instead of blocking the accept loop
// forever. The deadline is cleared before returning.
func AcceptWithin(conn net.Conn, timeout time.Duration) (string, error) {
	if err := conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
		return "", err
	}
	name, err := Accept(conn)
	if err != nil {
		return "", err
	}
	if err := conn.SetReadDeadline(time.Time{}); err != nil {
		return "", err
	}
	return name, nil
}
