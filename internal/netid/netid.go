// Package netid is the tiny connection-labeling preamble the TCP
// deployment tools use: the dialing party announces its protocol name
// before the session handshake so the acceptor can route the connection.
//
// Two hello forms share the wire. The legacy hello — one length byte, then
// the party name — is what single-session deployments have always sent. The
// extended hello adds a protocol version and a session ID, so a multi-tenant
// third-party server can route many concurrent sessions on one listener;
// holders announcing the same session ID are matched into one session. An
// acceptor that speaks the extension answers every extended hello with an
// admission response: a one-byte accept, or a typed reject frame
// ("ppc/reject" in docs/WIRE.md) naming why the connection was refused —
// capacity, queue overflow, budget, drain, version skew. Legacy hellos get
// no response, which is what keeps old holders working against both old and
// new acceptors (see the compatibility notes in docs/WIRE.md).
package netid

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"time"
)

// maxName bounds announced names.
const maxName = 64

// maxSession bounds announced session IDs.
const maxSession = 64

// Version is the baseline extended-hello protocol version. An acceptor
// refuses hellos from the future (RejectVersion) rather than guessing at
// their layout.
const Version = 1

// VersionSharded is the extended-hello version that adds a one-byte shard
// lane to the preamble, so a sharded third-party server can route a
// holder's control connection and its K shard connections on one
// listener. Version-2 hellos are answered with a routing admission
// (SendAcceptRouting) that carries the session's shard count.
const VersionSharded = 2

// VersionResume is the extended-hello version a holder sends when
// re-dialing a severed conduit of a live session: the version-2 fields
// plus a proposed transport epoch and the holder's per-lane frame
// watermarks (frames sent / frames received on the dead conduit). The
// acceptor matches it to the degraded session and answers with a resume
// grant (SendAcceptResume) carrying its own watermarks, so both ends
// replay exactly the frames the other never installed. Version-3 hellos
// never create sessions; v0–v2 admission is unchanged.
const VersionResume = 3

// VersionShardProc is the hello version a shard worker process accepts
// from its coordinator: the version-3 layout reinterpreted as a shard
// registration. The lane byte carries the shard index the coordinator is
// assigning (shard s as s+1, like every lane byte), and the watermark
// fields carry the coordinator's frame counters for the link — zero on a
// first registration, the live counters on a re-registration after the
// link (or the worker) died. The worker answers with a resume grant
// (SendAcceptResume) carrying its own counters: (0, 0) from a freshly
// started process, so the coordinator replays the full cached stream.
// Version-4 hellos are never valid at the third-party server itself —
// holders don't send them and the server refuses unknown-from-the-future
// versions — they exist only on coordinator↔shard links.
const VersionShardProc = 4

// MaxShards bounds the shard index a version-2 hello can carry (the lane
// byte reserves 0x00 for the control connection).
const MaxShards = 254

// magicExtended marks an extended hello. It is deliberately an invalid
// legacy name length (> maxName), so a legacy acceptor that receives an
// extended hello fails the preamble with its usual descriptive error
// instead of misreading the frame.
const magicExtended = 0xFF

// Admission response status bytes.
const (
	statusAccept = 0x00
	statusReject = 0x01
)

// maxRejectDetail bounds the free-text detail of a reject frame.
const maxRejectDetail = 512

// Announce writes the caller's party name on a fresh connection.
func Announce(conn net.Conn, name string) error {
	if name == "" || len(name) > maxName {
		return fmt.Errorf("netid: invalid name %q", name)
	}
	buf := append([]byte{byte(len(name))}, name...)
	_, err := conn.Write(buf)
	return err
}

// Accept reads the peer's announced name from a fresh connection.
func Accept(conn net.Conn) (string, error) {
	var l [1]byte
	if _, err := io.ReadFull(conn, l[:]); err != nil {
		return "", fmt.Errorf("netid: reading name length: %w", err)
	}
	if l[0] == 0 || int(l[0]) > maxName {
		return "", fmt.Errorf("netid: invalid name length %d", l[0])
	}
	name := make([]byte, l[0])
	if _, err := io.ReadFull(conn, name); err != nil {
		return "", fmt.Errorf("netid: reading name: %w", err)
	}
	return string(name), nil
}

// AnnounceWithin is Announce under a write deadline: a peer that accepts
// the connection but never drains the socket cannot wedge session setup.
// The deadline is cleared before returning so the session owns the
// connection's timeout policy afterwards.
func AnnounceWithin(conn net.Conn, name string, timeout time.Duration) error {
	if err := conn.SetWriteDeadline(time.Now().Add(timeout)); err != nil {
		return err
	}
	if err := Announce(conn, name); err != nil {
		return err
	}
	return conn.SetWriteDeadline(time.Time{})
}

// AcceptWithin is Accept under a read deadline: a client that connects
// and goes silent fails the preamble instead of blocking the accept loop
// forever. The deadline is cleared before returning.
func AcceptWithin(conn net.Conn, timeout time.Duration) (string, error) {
	if err := conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
		return "", err
	}
	name, err := Accept(conn)
	if err != nil {
		return "", err
	}
	if err := conn.SetReadDeadline(time.Time{}); err != nil {
		return "", err
	}
	return name, nil
}

// Hello is a parsed connection preamble. Version 0 with an empty Session
// is a legacy single-session hello; extended hellos carry the dialer's
// protocol version and session ID (the empty session ID names the default
// session, so a versioned hello without -session routes exactly like a
// legacy one).
type Hello struct {
	Name    string
	Session string
	Version int
	// Lane is the TP conduit lane a version-2 hello announces, in wire
	// form: 0 for the control connection (and for every version-0/1
	// hello, which predate lanes), s+1 for the conduit to TP shard s.
	// The zero value is the control lane, so hand-built hellos route like
	// legacy ones.
	Lane int
	// Epoch is the transport epoch a version-3 resume hello proposes for
	// the rebound conduit — strictly greater than every epoch the lane has
	// used, so both ends agree which transport instance carries the replay
	// (and derive a fresh channel key from it).
	Epoch uint32
	// Sent and Recv are the dialer's frame watermarks for the severed lane:
	// how many frames it had sent on, and received from, the dead conduit.
	// Version-3 only.
	Sent uint64
	Recv uint64
}

// Extended reports whether the hello used the extended form — only then
// does the dialer await an admission response.
func (h Hello) Extended() bool { return h.Version > 0 }

// Resume reports whether the hello asks to resume a severed lane of a live
// session rather than join a new one.
func (h Hello) Resume() bool { return h.Version == VersionResume }

// ShardRegistration reports whether the hello is a coordinator registering
// (or re-registering) with a shard worker process rather than a holder
// joining or resuming a session. The Lane field carries the assigned shard
// as shard+1; Epoch/Sent/Recv carry the coordinator's link state.
func (h Hello) ShardRegistration() bool { return h.Version == VersionShardProc }

// AnnounceSession writes the extended hello: magic, version, the caller's
// party name and its session ID. The acceptor answers with an admission
// response (AwaitAdmission); a legacy acceptor instead fails its preamble
// descriptively on the magic byte, which is the documented signal that the
// server does not speak sessions.
func AnnounceSession(conn net.Conn, name, session string) error {
	if name == "" || len(name) > maxName {
		return fmt.Errorf("netid: invalid name %q", name)
	}
	if len(session) > maxSession {
		return fmt.Errorf("netid: session ID %q longer than %d bytes", session, maxSession)
	}
	buf := make([]byte, 0, 4+len(name)+len(session))
	buf = append(buf, magicExtended, Version, byte(len(name)))
	buf = append(buf, name...)
	buf = append(buf, byte(len(session)))
	buf = append(buf, session...)
	_, err := conn.Write(buf)
	return err
}

// AnnounceSessionShard writes the version-2 hello: the extended fields
// plus the shard lane byte. shard -1 announces the control connection,
// shard s >= 0 the conduit to TP shard s. The acceptor answers with a
// routing admission carrying the session's shard count
// (AwaitAdmissionRouting); acceptors that only speak version 1 refuse the
// hello with RejectVersion.
func AnnounceSessionShard(conn net.Conn, name, session string, shard int) error {
	if name == "" || len(name) > maxName {
		return fmt.Errorf("netid: invalid name %q", name)
	}
	if len(session) > maxSession {
		return fmt.Errorf("netid: session ID %q longer than %d bytes", session, maxSession)
	}
	if shard < -1 || shard >= MaxShards {
		return fmt.Errorf("netid: shard %d outside [-1, %d)", shard, MaxShards)
	}
	buf := make([]byte, 0, 5+len(name)+len(session))
	buf = append(buf, magicExtended, VersionSharded, byte(len(name)))
	buf = append(buf, name...)
	buf = append(buf, byte(len(session)))
	buf = append(buf, session...)
	buf = append(buf, byte(shard+1))
	_, err := conn.Write(buf)
	return err
}

// AnnounceSessionShardWithin is AnnounceSessionShard under a write
// deadline, cleared before returning (cf. AnnounceWithin).
func AnnounceSessionShardWithin(conn net.Conn, name, session string, shard int, timeout time.Duration) error {
	if err := conn.SetWriteDeadline(time.Now().Add(timeout)); err != nil {
		return err
	}
	if err := AnnounceSessionShard(conn, name, session, shard); err != nil {
		return err
	}
	return conn.SetWriteDeadline(time.Time{})
}

// AnnounceResume writes the version-3 resume hello: the version-2 fields,
// then the proposed transport epoch and the dialer's frame watermarks for
// the severed lane (big-endian). shard follows the AnnounceSessionShard
// convention: -1 for the control conduit, s >= 0 for shard s. The acceptor
// answers with a resume grant (AwaitResumeGrant) or a typed refusal; v0–v2
// acceptors refuse the unknown version (RejectVersion).
func AnnounceResume(conn net.Conn, name, session string, shard int, epoch uint32, sent, recv uint64) error {
	if name == "" || len(name) > maxName {
		return fmt.Errorf("netid: invalid name %q", name)
	}
	if len(session) > maxSession {
		return fmt.Errorf("netid: session ID %q longer than %d bytes", session, maxSession)
	}
	if shard < -1 || shard >= MaxShards {
		return fmt.Errorf("netid: shard %d outside [-1, %d)", shard, MaxShards)
	}
	buf := make([]byte, 0, 25+len(name)+len(session))
	buf = append(buf, magicExtended, VersionResume, byte(len(name)))
	buf = append(buf, name...)
	buf = append(buf, byte(len(session)))
	buf = append(buf, session...)
	buf = append(buf, byte(shard+1))
	buf = binary.BigEndian.AppendUint32(buf, epoch)
	buf = binary.BigEndian.AppendUint64(buf, sent)
	buf = binary.BigEndian.AppendUint64(buf, recv)
	_, err := conn.Write(buf)
	return err
}

// AnnounceResumeWithin is AnnounceResume under a write deadline, cleared
// before returning (cf. AnnounceWithin).
func AnnounceResumeWithin(conn net.Conn, name, session string, shard int, epoch uint32, sent, recv uint64, timeout time.Duration) error {
	if err := conn.SetWriteDeadline(time.Now().Add(timeout)); err != nil {
		return err
	}
	if err := AnnounceResume(conn, name, session, shard, epoch, sent, recv); err != nil {
		return err
	}
	return conn.SetWriteDeadline(time.Time{})
}

// AnnounceShardRegistration writes the version-4 shard-registration hello
// a coordinator sends to a shard worker process: the version-3 layout with
// the registering party's name, the session ID, the shard index being
// assigned (always a real shard — workers have no control lane, so shard
// must be in [0, MaxShards)), the transport epoch the coordinator proposes
// and its frame watermarks for the link (zero on first contact). The
// worker answers with a resume grant carrying its own watermarks
// (AwaitResumeGrant): (0, 0) from a fresh process, its live counters when
// it survived a link flap.
func AnnounceShardRegistration(conn net.Conn, name, session string, shard int, epoch uint32, sent, recv uint64) error {
	if name == "" || len(name) > maxName {
		return fmt.Errorf("netid: invalid name %q", name)
	}
	if len(session) > maxSession {
		return fmt.Errorf("netid: session ID %q longer than %d bytes", session, maxSession)
	}
	if shard < 0 || shard >= MaxShards {
		return fmt.Errorf("netid: shard %d outside [0, %d)", shard, MaxShards)
	}
	buf := make([]byte, 0, 25+len(name)+len(session))
	buf = append(buf, magicExtended, VersionShardProc, byte(len(name)))
	buf = append(buf, name...)
	buf = append(buf, byte(len(session)))
	buf = append(buf, session...)
	buf = append(buf, byte(shard+1))
	buf = binary.BigEndian.AppendUint32(buf, epoch)
	buf = binary.BigEndian.AppendUint64(buf, sent)
	buf = binary.BigEndian.AppendUint64(buf, recv)
	_, err := conn.Write(buf)
	return err
}

// AnnounceShardRegistrationWithin is AnnounceShardRegistration under a
// write deadline, cleared before returning (cf. AnnounceWithin).
func AnnounceShardRegistrationWithin(conn net.Conn, name, session string, shard int, epoch uint32, sent, recv uint64, timeout time.Duration) error {
	if err := conn.SetWriteDeadline(time.Now().Add(timeout)); err != nil {
		return err
	}
	if err := AnnounceShardRegistration(conn, name, session, shard, epoch, sent, recv); err != nil {
		return err
	}
	return conn.SetWriteDeadline(time.Time{})
}

// AnnounceSessionWithin is AnnounceSession under a write deadline, cleared
// before returning (cf. AnnounceWithin).
func AnnounceSessionWithin(conn net.Conn, name, session string, timeout time.Duration) error {
	if err := conn.SetWriteDeadline(time.Now().Add(timeout)); err != nil {
		return err
	}
	if err := AnnounceSession(conn, name, session); err != nil {
		return err
	}
	return conn.SetWriteDeadline(time.Time{})
}

// ParseHello reads either hello form from r: the first byte distinguishes
// a legacy length prefix from the extended magic. A legacy hello parses to
// Version 0 and the default (empty) session, which is how old
// single-session holders keep working against a multi-tenant acceptor. A
// version-2 hello additionally carries the shard lane byte; versions 3
// (resume) and 4 (shard registration) carry the lane plus the epoch and
// watermark fields. A hello claiming a version newer than this package
// understands is returned intact with its claimed Version — the acceptor
// decides whether to refuse it (RejectVersion) rather than this layer
// guessing at an unknown layout; bytes past the version-2 fields stay
// unread, so the refusal must close the connection.
func ParseHello(r io.Reader) (Hello, error) {
	var first [1]byte
	if _, err := io.ReadFull(r, first[:]); err != nil {
		return Hello{}, fmt.Errorf("netid: reading hello: %w", err)
	}
	if first[0] != magicExtended {
		// Legacy hello: first byte is the name length.
		if first[0] == 0 || int(first[0]) > maxName {
			return Hello{}, fmt.Errorf("netid: invalid name length %d", first[0])
		}
		name := make([]byte, first[0])
		if _, err := io.ReadFull(r, name); err != nil {
			return Hello{}, fmt.Errorf("netid: reading name: %w", err)
		}
		return Hello{Name: string(name)}, nil
	}
	var ver [1]byte
	if _, err := io.ReadFull(r, ver[:]); err != nil {
		return Hello{}, fmt.Errorf("netid: reading hello version: %w", err)
	}
	if ver[0] == 0 {
		return Hello{}, fmt.Errorf("netid: invalid extended hello version 0")
	}
	var l [1]byte
	if _, err := io.ReadFull(r, l[:]); err != nil {
		return Hello{}, fmt.Errorf("netid: reading name length: %w", err)
	}
	if l[0] == 0 || int(l[0]) > maxName {
		return Hello{}, fmt.Errorf("netid: invalid name length %d", l[0])
	}
	name := make([]byte, l[0])
	if _, err := io.ReadFull(r, name); err != nil {
		return Hello{}, fmt.Errorf("netid: reading name: %w", err)
	}
	if _, err := io.ReadFull(r, l[:]); err != nil {
		return Hello{}, fmt.Errorf("netid: reading session length: %w", err)
	}
	if int(l[0]) > maxSession {
		return Hello{}, fmt.Errorf("netid: invalid session length %d", l[0])
	}
	session := make([]byte, l[0])
	if _, err := io.ReadFull(r, session); err != nil {
		return Hello{}, fmt.Errorf("netid: reading session: %w", err)
	}
	h := Hello{Name: string(name), Session: string(session), Version: int(ver[0])}
	if ver[0] >= VersionSharded && ver[0] <= VersionShardProc {
		var lane [1]byte
		if _, err := io.ReadFull(r, lane[:]); err != nil {
			return Hello{}, fmt.Errorf("netid: reading shard lane: %w", err)
		}
		h.Lane = int(lane[0])
	}
	if ver[0] == VersionResume || ver[0] == VersionShardProc {
		var marks [20]byte
		if _, err := io.ReadFull(r, marks[:]); err != nil {
			return Hello{}, fmt.Errorf("netid: reading resume watermarks: %w", err)
		}
		h.Epoch = binary.BigEndian.Uint32(marks[0:4])
		h.Sent = binary.BigEndian.Uint64(marks[4:12])
		h.Recv = binary.BigEndian.Uint64(marks[12:20])
	}
	return h, nil
}

// AcceptHello is ParseHello on a fresh connection.
func AcceptHello(conn net.Conn) (Hello, error) {
	return ParseHello(conn)
}

// AcceptHelloWithin is AcceptHello under a read deadline, cleared before
// returning (cf. AcceptWithin).
func AcceptHelloWithin(conn net.Conn, timeout time.Duration) (Hello, error) {
	if err := conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
		return Hello{}, err
	}
	h, err := AcceptHello(conn)
	if err != nil {
		return Hello{}, err
	}
	if err := conn.SetReadDeadline(time.Time{}); err != nil {
		return Hello{}, err
	}
	return h, nil
}

// RejectCode types the reason an admission was refused, so holders and
// their supervisors can branch without parsing free text.
type RejectCode byte

const (
	// RejectCapacity: the server is at -max-sessions with no admission
	// queue configured (or the queue is disabled for this class).
	RejectCapacity RejectCode = iota + 1
	// RejectQueueFull: the server is saturated and the bounded admission
	// queue is full — the backpressure limit, never a silent hang.
	RejectQueueFull
	// RejectBudget: admitting the session would exceed the server's global
	// resource budget.
	RejectBudget
	// RejectDraining: the server is draining for shutdown and admits no
	// new work. Retryable — a restarted server will accept again.
	RejectDraining
	// RejectVersion: the hello's protocol version is not supported.
	RejectVersion
	// RejectSession: the session ID is invalid or conflicts with session
	// state (e.g. the session already failed).
	RejectSession
	// RejectUnknownHolder: the announced name is not one of the holders
	// this server serves sessions for.
	RejectUnknownHolder
	// RejectDuplicateHolder: this session already has a connection for the
	// announced holder name.
	RejectDuplicateHolder
	// RejectTimeout: the session did not gather all of its holders within
	// the server's gather deadline; its parked connections are refused.
	RejectTimeout
	// RejectResume: a version-3 resume hello was refused — the session or
	// lane is unknown, the session already aborted, or the offered
	// watermarks are stale/backward relative to the server's. Not
	// retryable: the streamed state the resume depends on is gone.
	RejectResume
)

// String names the code as it appears in reject frames, logs and metrics.
func (c RejectCode) String() string {
	switch c {
	case RejectCapacity:
		return "capacity"
	case RejectQueueFull:
		return "queue-full"
	case RejectBudget:
		return "budget"
	case RejectDraining:
		return "draining"
	case RejectVersion:
		return "version"
	case RejectSession:
		return "session"
	case RejectUnknownHolder:
		return "unknown-holder"
	case RejectDuplicateHolder:
		return "duplicate-holder"
	case RejectTimeout:
		return "gather-timeout"
	case RejectResume:
		return "resume"
	default:
		return fmt.Sprintf("code-%d", byte(c))
	}
}

// ErrRejected classifies every admission refusal; test with errors.Is and
// errors.As (*RejectedError) for the typed code.
var ErrRejected = errors.New("netid: admission refused")

// RejectedError is a typed admission refusal, carried by the reject frame.
type RejectedError struct {
	Code   RejectCode
	Detail string
}

func (e *RejectedError) Error() string {
	if e.Detail == "" {
		return fmt.Sprintf("netid: admission refused (%s)", e.Code)
	}
	return fmt.Sprintf("netid: admission refused (%s): %s", e.Code, e.Detail)
}

// Unwrap ties every refusal to the ErrRejected class.
func (e *RejectedError) Unwrap() error { return ErrRejected }

// Retryable reports whether re-dialing later can reasonably succeed: a
// draining server is being replaced, so holders racing a restart should
// back off and reconnect rather than exit.
func (e *RejectedError) Retryable() bool { return e.Code == RejectDraining }

// SendAccept answers an extended hello with admission. The session
// handshake frames follow on the same connection.
func SendAccept(conn net.Conn) error {
	_, err := conn.Write([]byte{statusAccept})
	return err
}

// SendAcceptRouting answers a version-2 hello with admission plus the
// routing preamble: the session's TP shard count. The dialer is expected
// to establish one conduit per shard (to ShardName(0..shards-1)) before
// the party handshake; shards == 1 means the single-TP path with no shard
// conduits. Version-1 dialers never receive this form — they cannot read
// the count, so a sharded server admits them only when shards == 1
// (SendAccept) and refuses otherwise (RejectVersion).
func SendAcceptRouting(conn net.Conn, shards int) error {
	if shards < 1 || shards > MaxShards {
		return fmt.Errorf("netid: shard count %d outside [1, %d]", shards, MaxShards)
	}
	_, err := conn.Write([]byte{statusAccept, byte(shards)})
	return err
}

// SendAcceptResume answers a version-3 resume hello with a resume grant:
// admission plus the acceptor's own frame watermarks for the lane (frames
// it had sent, frames it had received and installed — big-endian). The
// dialer replays everything past recv; the acceptor replays everything
// past the hello's Recv. Secure-channel re-establishment under the agreed
// epoch follows on the same connection.
func SendAcceptResume(conn net.Conn, sent, recv uint64) error {
	buf := make([]byte, 0, 17)
	buf = append(buf, statusAccept)
	buf = binary.BigEndian.AppendUint64(buf, sent)
	buf = binary.BigEndian.AppendUint64(buf, recv)
	_, err := conn.Write(buf)
	return err
}

// SendReject answers an extended hello with a typed refusal and detail
// (truncated to a bounded length). The caller closes the connection after;
// nothing may follow a reject frame.
func SendReject(conn net.Conn, code RejectCode, detail string) error {
	if len(detail) > maxRejectDetail {
		detail = detail[:maxRejectDetail]
	}
	buf := make([]byte, 0, 4+len(detail))
	buf = append(buf, statusReject, byte(code))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(detail)))
	buf = append(buf, detail...)
	_, err := conn.Write(buf)
	return err
}

// AwaitAdmission reads the admission response that follows an extended
// hello: nil on accept, a *RejectedError (classified under ErrRejected) on
// a typed refusal. The timeout bounds the whole wait — a saturated server
// parks the connection in its admission queue and answers only once a slot
// frees, so this deadline is the dialer's backpressure patience. The read
// deadline is cleared before returning so the session owns the
// connection's timeout policy afterwards.
func AwaitAdmission(conn net.Conn, timeout time.Duration) error {
	if err := conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
		return err
	}
	var status [1]byte
	if _, err := io.ReadFull(conn, status[:]); err != nil {
		return fmt.Errorf("netid: reading admission response: %w", err)
	}
	switch status[0] {
	case statusAccept:
		return conn.SetReadDeadline(time.Time{})
	case statusReject:
		return readReject(conn)
	default:
		return fmt.Errorf("netid: invalid admission response status %d", status[0])
	}
}

// AwaitAdmissionRouting reads the routing admission that follows a
// version-2 hello: the session's TP shard count on accept, a
// *RejectedError on a typed refusal. Deadline semantics match
// AwaitAdmission.
func AwaitAdmissionRouting(conn net.Conn, timeout time.Duration) (int, error) {
	if err := conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
		return 0, err
	}
	var status [1]byte
	if _, err := io.ReadFull(conn, status[:]); err != nil {
		return 0, fmt.Errorf("netid: reading admission response: %w", err)
	}
	switch status[0] {
	case statusAccept:
		var count [1]byte
		if _, err := io.ReadFull(conn, count[:]); err != nil {
			return 0, fmt.Errorf("netid: reading shard count: %w", err)
		}
		if count[0] < 1 {
			return 0, fmt.Errorf("netid: invalid shard count %d", count[0])
		}
		return int(count[0]), conn.SetReadDeadline(time.Time{})
	case statusReject:
		return 0, readReject(conn)
	default:
		return 0, fmt.Errorf("netid: invalid admission response status %d", status[0])
	}
}

// AwaitResumeGrant reads the resume grant that follows a version-3 hello:
// the acceptor's (sent, recv) watermarks for the lane on accept, a
// *RejectedError on a typed refusal. Deadline semantics match
// AwaitAdmission.
func AwaitResumeGrant(conn net.Conn, timeout time.Duration) (sent, recv uint64, err error) {
	if err := conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
		return 0, 0, err
	}
	var status [1]byte
	if _, err := io.ReadFull(conn, status[:]); err != nil {
		return 0, 0, fmt.Errorf("netid: reading resume grant: %w", err)
	}
	switch status[0] {
	case statusAccept:
		sent, recv, err = parseResumeGrant(conn)
		if err != nil {
			return 0, 0, err
		}
		return sent, recv, conn.SetReadDeadline(time.Time{})
	case statusReject:
		return 0, 0, readReject(conn)
	default:
		return 0, 0, fmt.Errorf("netid: invalid resume grant status %d", status[0])
	}
}

// parseResumeGrant reads the watermark body of an accepted resume grant:
// the acceptor's sent and received frame counts, big-endian.
func parseResumeGrant(r io.Reader) (sent, recv uint64, err error) {
	var marks [16]byte
	if _, err := io.ReadFull(r, marks[:]); err != nil {
		return 0, 0, fmt.Errorf("netid: reading resume watermarks: %w", err)
	}
	return binary.BigEndian.Uint64(marks[0:8]), binary.BigEndian.Uint64(marks[8:16]), nil
}

// readReject is parseReject on a connection.
func readReject(conn net.Conn) error {
	return parseReject(conn)
}

// parseReject parses the typed refusal frame that follows a reject status
// byte.
func parseReject(r io.Reader) error {
	var hdr [3]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return fmt.Errorf("netid: reading reject frame: %w", err)
	}
	n := binary.BigEndian.Uint16(hdr[1:3])
	if n > maxRejectDetail {
		return fmt.Errorf("netid: reject detail length %d exceeds %d", n, maxRejectDetail)
	}
	detail := make([]byte, n)
	if _, err := io.ReadFull(r, detail); err != nil {
		return fmt.Errorf("netid: reading reject detail: %w", err)
	}
	return &RejectedError{Code: RejectCode(hdr[0]), Detail: string(detail)}
}
