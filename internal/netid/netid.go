// Package netid is the tiny connection-labeling preamble the TCP
// deployment tools use: the dialing party announces its protocol name
// before the session handshake so the acceptor can route the connection.
package netid

import (
	"fmt"
	"io"
	"net"
)

// maxName bounds announced names.
const maxName = 64

// Announce writes the caller's party name on a fresh connection.
func Announce(conn net.Conn, name string) error {
	if name == "" || len(name) > maxName {
		return fmt.Errorf("netid: invalid name %q", name)
	}
	buf := append([]byte{byte(len(name))}, name...)
	_, err := conn.Write(buf)
	return err
}

// Accept reads the peer's announced name from a fresh connection.
func Accept(conn net.Conn) (string, error) {
	var l [1]byte
	if _, err := io.ReadFull(conn, l[:]); err != nil {
		return "", fmt.Errorf("netid: reading name length: %w", err)
	}
	if l[0] == 0 || int(l[0]) > maxName {
		return "", fmt.Errorf("netid: invalid name length %d", l[0])
	}
	name := make([]byte, l[0])
	if _, err := io.ReadFull(conn, name); err != nil {
		return "", fmt.Errorf("netid: reading name: %w", err)
	}
	return string(name), nil
}
