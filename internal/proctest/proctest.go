// Package proctest is the multi-process conformance harness: it builds
// the real ppc-shard worker binary once, spawns worker subprocesses on
// localhost TCP, and drives sessions whose coordinator lives in the test
// process while the shard stage pipelines run in the spawned workers —
// the full cross-process control protocol (v4 registration, slice offer,
// frame relay, heartbeats, done/abort) over real process and socket
// boundaries.
//
// The package also scripts deterministic process death: a worker spawned
// with a crash point (PPC_SHARD_CRASH_AFTER_FRAMES) exits hard at an
// exact protocol position, and the harness can respawn it on the same
// address so a coordinator's redial lands on a genuinely fresh process.
// The tests pin bit-identity of every surviving configuration against the
// single-TP differential and classified failure for every non-surviving
// one.
package proctest

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
	"sync"
	"time"
)

// shardBin is the ppc-shard binary TestMain builds once for every test.
var shardBin string

// schemaSpec is the worker's -schema flag; schema() in data.go builds the
// byte-identical dataset.Schema the in-process coordinator runs with (the
// registration offer carries a fingerprint over it, so the two must
// agree).
const schemaSpec = "age:numeric,income:numeric,dna:alphanumeric:dna,city:categorical"

// worker is one spawned ppc-shard subprocess.
type worker struct {
	cmd  *exec.Cmd
	addr string
	done chan struct{} // closed when the process exits
}

// startWorker spawns a ppc-shard on listen ("127.0.0.1:0" for an
// ephemeral port, a concrete address for a respawn) and waits for its
// stdout address line. crashAfter > 0 arms the deterministic crash hook:
// the process exits hard (no drain, no abort frames) once any run has
// relayed that many frames.
func startWorker(listen string, crashAfter int) (*worker, error) {
	cmd := exec.Command(shardBin, "-listen", listen, "-schema", schemaSpec)
	cmd.Env = os.Environ()
	if crashAfter > 0 {
		cmd.Env = append(cmd.Env, fmt.Sprintf("PPC_SHARD_CRASH_AFTER_FRAMES=%d", crashAfter))
	}
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	w := &worker{cmd: cmd, done: make(chan struct{})}
	line, err := bufio.NewReader(stdout).ReadString('\n')
	if err != nil {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		close(w.done)
		return nil, fmt.Errorf("proctest: worker produced no address line: %w", err)
	}
	w.addr = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(line), "listening on "))
	if w.addr == "" {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		close(w.done)
		return nil, fmt.Errorf("proctest: malformed address line %q", line)
	}
	go func() {
		_, _ = io.Copy(io.Discard, stdout) // drain any later stdout
		_ = cmd.Wait()
		close(w.done)
	}()
	return w, nil
}

// kill terminates the worker hard and waits for the process to be reaped.
func (w *worker) kill() {
	select {
	case <-w.done: // already exited (crash hook fired)
	default:
		_ = w.cmd.Process.Kill()
	}
	<-w.done
}

// exited reports whether the process has already terminated.
func (w *worker) exited() bool {
	select {
	case <-w.done:
		return true
	default:
		return false
	}
}

// respawnDeadline bounds how long a respawn retries rebinding a crashed
// worker's concrete port (the dying process's socket can linger briefly).
const respawnDeadline = 15 * time.Second

// respawnOnExit watches a worker and, when its process dies, starts a
// fresh ppc-shard on the same address (retrying the bind until the port
// frees) so the coordinator's redial reaches a genuinely new process.
// stop() ends the watch and kills whichever process is current.
func respawnOnExit(w *worker, onErr func(error)) (stop func()) {
	var mu sync.Mutex
	current := w
	stopped := make(chan struct{})
	watcherDone := make(chan struct{})
	var once sync.Once
	go func() {
		defer close(watcherDone)
		for {
			mu.Lock()
			c := current
			mu.Unlock()
			select {
			case <-stopped:
				return
			case <-c.done:
			}
			deadline := time.Now().Add(respawnDeadline)
			for {
				select {
				case <-stopped:
					return
				default:
				}
				fresh, err := startWorker(c.addr, 0)
				if err == nil {
					mu.Lock()
					current = fresh
					mu.Unlock()
					break
				}
				if time.Now().After(deadline) {
					onErr(fmt.Errorf("proctest: respawning worker on %s: %w", c.addr, err))
					return
				}
				time.Sleep(50 * time.Millisecond)
			}
		}
	}()
	return func() {
		once.Do(func() { close(stopped) })
		// Wait for the watcher to quiesce before reading current: killing
		// concurrently with a respawn would leak the fresh process (whose
		// inherited stderr then holds go test's output pipe open).
		<-watcherDone
		mu.Lock()
		c := current
		mu.Unlock()
		c.kill()
	}
}
