package proctest

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"ppclust/internal/alphabet"
	"ppclust/internal/dataset"
	"ppclust/internal/hcluster"
	"ppclust/internal/keys"
	"ppclust/internal/leakcheck"
	"ppclust/internal/netid"
	"ppclust/internal/party"
	"ppclust/internal/rng"
	"ppclust/internal/wire"
)

// TestMain builds the real ppc-shard binary exactly once; every test
// spawns subprocesses from it.
func TestMain(m *testing.M) {
	tmp, err := os.MkdirTemp("", "ppc-shard-bin")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	shardBin = filepath.Join(tmp, "ppc-shard")
	build := exec.Command("go", "build", "-o", shardBin, "ppclust/cmd/ppc-shard")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "proctest: building ppc-shard: %v\n", err)
		os.RemoveAll(tmp)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(tmp)
	os.Exit(code)
}

// schema mirrors schemaSpec exactly (the registration fingerprint must
// match the workers').
func schema() dataset.Schema {
	return dataset.Schema{Attrs: []dataset.Attribute{
		{Name: "age", Type: dataset.Numeric},
		{Name: "income", Type: dataset.Numeric},
		{Name: "dna", Type: dataset.Alphanumeric, Alphabet: alphabet.DNA},
		{Name: "city", Type: dataset.Categorical},
	}}
}

// parts builds three deterministic partitions (same construction as the
// party package's pipeline fixtures).
func parts(t *testing.T, rows int) []dataset.Partition {
	t.Helper()
	s := rng.NewXoshiro(rng.SeedFromUint64(777))
	cities := []string{"ankara", "istanbul", "izmir"}
	bases := "ACGT"
	var out []dataset.Partition
	for pi, site := range []string{"A", "B", "C"} {
		tab := dataset.MustNewTable(schema())
		for r := 0; r < rows+pi; r++ {
			dna := make([]byte, 5+rng.Symbol(s, 4))
			for i := range dna {
				dna[i] = bases[rng.Symbol(s, 4)]
			}
			tab.MustAppendRow(
				float64(rng.Symbol(s, 80)),
				float64(rng.Symbol(s, 5000)),
				string(dna),
				cities[rng.Symbol(s, len(cities))],
			)
		}
		out = append(out, dataset.Partition{Site: site, Table: tab})
	}
	return out
}

func reqs() map[string]party.ClusterRequest {
	return map[string]party.ClusterRequest{
		"A": {Linkage: hcluster.Average, K: 2},
		"B": {Linkage: hcluster.Single, K: 3},
		"C": {Method: party.MethodPAM, K: 2},
	}
}

func random(salt uint64) party.RandomSource {
	return func(p string) io.Reader {
		seed := rng.SeedFromBytes([]byte(p))
		mixed := rng.SeedFromBytes(append(seed[:], byte(salt), byte(salt>>8)))
		return keys.StreamReader(rng.NewAESCTR(mixed))
	}
}

// assertSame requires bit-identical reports and results.
func assertSame(t *testing.T, label string, want, got *party.SessionOutcome) {
	t.Helper()
	if want.Report == nil || got.Report == nil {
		t.Fatalf("%s: missing TP report", label)
	}
	if !reflect.DeepEqual(want.Report.ObjectIDs, got.Report.ObjectIDs) {
		t.Fatalf("%s: object orderings differ", label)
	}
	if !reflect.DeepEqual(want.Report.Scales, got.Report.Scales) {
		t.Fatalf("%s: scales differ: %v vs %v", label, want.Report.Scales, got.Report.Scales)
	}
	if len(want.Report.AttributeMatrices) != len(got.Report.AttributeMatrices) {
		t.Fatalf("%s: matrix counts differ", label)
	}
	for i, wm := range want.Report.AttributeMatrices {
		if !wm.EqualWithin(got.Report.AttributeMatrices[i], 0) {
			t.Fatalf("%s: attribute %d matrices not bit-identical", label, i)
		}
	}
	if !reflect.DeepEqual(want.Results, got.Results) {
		t.Fatalf("%s: published results differ", label)
	}
}

// dialerFor builds the coordinator's ShardDialFunc over a worker address
// list: TCP dial, v4 registration hello, watermark grant. addr is read
// per dial so a respawned worker on the same address is reached
// transparently.
func dialerFor(session string, addrs []string) party.ShardDialFunc {
	return func(ctx context.Context, shard int, state party.ResumeState) (wire.Conduit, party.ResumeGrant, error) {
		var d net.Dialer
		conn, err := d.DialContext(ctx, "tcp", addrs[shard])
		if err != nil {
			return nil, party.ResumeGrant{}, err
		}
		if err := netid.AnnounceShardRegistrationWithin(conn, party.TPName, session, shard,
			state.Epoch, state.Sent, state.Recv, 5*time.Second); err != nil {
			conn.Close()
			return nil, party.ResumeGrant{}, err
		}
		sent, recv, err := netid.AwaitResumeGrant(conn, 5*time.Second)
		if err != nil {
			conn.Close()
			return nil, party.ResumeGrant{}, err
		}
		return wire.TCPPooled(conn), party.ResumeGrant{Sent: sent, Recv: recv}, nil
	}
}

// baseline runs the phase-serial single-TP reference session.
func baseline(t *testing.T, rows int, salt uint64) *party.SessionOutcome {
	t.Helper()
	cfg := party.Config{Schema: schema(), Variant: party.Float64Variant, Parallelism: 1, SerialTP: true}
	want, err := party.RunInMemory(cfg, parts(t, rows), reqs(), random(salt))
	if err != nil {
		t.Fatalf("single-TP baseline: %v", err)
	}
	return want
}

// spawn is startWorker with test plumbing: fatal on error, killed on
// cleanup.
func spawn(t *testing.T, listen string, crashAfter int) *worker {
	t.Helper()
	w, err := startWorker(listen, crashAfter)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.kill)
	return w
}

// TestMultiProcessDifferential is the conformance grid: sessions whose
// shard pipelines run in real ppc-shard subprocesses must publish reports
// bit-identical to the single-TP reference at every K × Parallelism
// configuration, with the in-process K-shard path cross-checked as the
// oracle.
func TestMultiProcessDifferential(t *testing.T) {
	want := baseline(t, 10, 61)
	workers := make([]*worker, 4)
	addrs := make([]string, 4)
	for i := range workers {
		workers[i] = spawn(t, "127.0.0.1:0", 0)
		addrs[i] = workers[i].addr
	}
	for _, k := range []int{2, 4} {
		for _, par := range []int{1, 0} {
			label := fmt.Sprintf("k=%d parallelism=%d", k, par)
			inproc := party.Config{Schema: schema(), Variant: party.Float64Variant, Parallelism: par, TPShards: k}
			oracle, err := party.RunInMemory(inproc, parts(t, 10), reqs(), random(61))
			if err != nil {
				t.Fatalf("%s in-process oracle: %v", label, err)
			}
			assertSame(t, label+" (in-process oracle)", want, oracle)

			cfg := inproc
			cfg.ShardDial = dialerFor(fmt.Sprintf("diff-%d-%d", k, par), addrs[:k])
			got, err := party.RunInMemory(cfg, parts(t, 10), reqs(), random(61))
			if err != nil {
				t.Fatalf("%s multi-process: %v", label, err)
			}
			assertSame(t, label+" (worker subprocesses)", want, got)
		}
	}
	for _, w := range workers {
		if w.exited() {
			t.Fatal("a worker subprocess died during the differential grid")
		}
	}
}

// TestMultiProcessKillRestartResumes scripts a worker-process crash at
// exact protocol points: shard 1's worker exits hard after relaying N
// frames, the harness respawns a fresh process on the same address, and
// the coordinator's redial re-registers there inside the reconnect
// window. Every kill point must still end bit-identical to the
// single-TP reference.
func TestMultiProcessKillRestartResumes(t *testing.T) {
	want := baseline(t, 9, 62)
	for _, kill := range []int{1, 4, 9} {
		t.Run(fmt.Sprintf("frames=%d", kill), func(t *testing.T) {
			w0 := spawn(t, "127.0.0.1:0", 0)
			doomed, err := startWorker("127.0.0.1:0", kill)
			if err != nil {
				t.Fatal(err)
			}
			respawnErr := make(chan error, 1)
			stop := respawnOnExit(doomed, func(err error) { respawnErr <- err })
			t.Cleanup(stop)

			cfg := party.Config{Schema: schema(), Variant: party.Float64Variant, TPShards: 2,
				ResumeWindow: 20 * time.Second}
			cfg.ShardDial = dialerFor(fmt.Sprintf("kill-%d", kill), []string{w0.addr, doomed.addr})
			got, err := party.RunInMemory(cfg, parts(t, 9), reqs(), random(62))
			select {
			case rerr := <-respawnErr:
				t.Fatalf("worker respawn failed: %v", rerr)
			default:
			}
			if err != nil {
				t.Fatalf("session across the kill: %v", err)
			}
			assertSame(t, fmt.Sprintf("kill at %d frames", kill), want, got)
			if w0.exited() {
				t.Fatal("the surviving worker died")
			}
		})
	}
}

// TestMultiProcessKillOutsideWindow: with no reconnect window a worker
// crash fails the session promptly and classified, the coordinator leaks
// no goroutines, and the surviving worker process stays healthy enough to
// serve a follow-up session next to a fresh replacement.
func TestMultiProcessKillOutsideWindow(t *testing.T) {
	leakcheck.Check(t)
	w0 := spawn(t, "127.0.0.1:0", 0)
	doomed := spawn(t, "127.0.0.1:0", 3) // crashes after 3 relayed frames, never respawned

	cfg := party.Config{Schema: schema(), Variant: party.Float64Variant, TPShards: 2}
	cfg.ShardDial = dialerFor("kill-hard", []string{w0.addr, doomed.addr})
	_, err := party.RunInMemory(cfg, parts(t, 9), reqs(), random(63))
	if err == nil {
		t.Fatal("session across an unrecoverable worker crash succeeded")
	}
	if !errors.Is(err, party.ErrDisconnected) && !errors.Is(err, party.ErrAborted) &&
		!errors.Is(err, party.ErrSessionTimeout) {
		t.Fatalf("worker crash produced an unclassified error: %v", err)
	}
	if w0.exited() {
		t.Fatal("the surviving worker died with the session")
	}

	// The surviving process serves the next session untouched.
	w1 := spawn(t, "127.0.0.1:0", 0)
	want := baseline(t, 9, 63)
	cfg2 := party.Config{Schema: schema(), Variant: party.Float64Variant, TPShards: 2}
	cfg2.ShardDial = dialerFor("follow-up", []string{w0.addr, w1.addr})
	got, err := party.RunInMemory(cfg2, parts(t, 9), reqs(), random(63))
	if err != nil {
		t.Fatalf("follow-up session on the surviving worker: %v", err)
	}
	assertSame(t, "follow-up after hard kill", want, got)
}

// TestMultiProcessWorkerDrain: SIGTERM to a worker drains it — registered
// runs are aborted with a typed reason, the process exits on its own, and
// a session dialing the gone worker fails classified rather than hanging.
func TestMultiProcessWorkerDrain(t *testing.T) {
	w := spawn(t, "127.0.0.1:0", 0)
	if err := w.cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	select {
	case <-w.done:
	case <-time.After(10 * time.Second):
		t.Fatal("worker did not exit after SIGINT")
	}
	w0 := spawn(t, "127.0.0.1:0", 0)
	cfg := party.Config{Schema: schema(), Variant: party.Float64Variant, TPShards: 2}
	cfg.ShardDial = dialerFor("drained", []string{w0.addr, w.addr})
	if _, err := party.RunInMemory(cfg, parts(t, 9), reqs(), random(64)); err == nil {
		t.Fatal("session against a drained worker succeeded")
	}
}
