package keys

import (
	"bytes"
	"crypto/rand"
	"encoding/hex"
	"testing"

	"ppclust/internal/rng"
)

// TestHKDFRFC5869Vector1 checks the package HKDF against RFC 5869 test case 1.
func TestHKDFRFC5869Vector1(t *testing.T) {
	ikm, _ := hex.DecodeString("0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b")
	salt, _ := hex.DecodeString("000102030405060708090a0b0c")
	info, _ := hex.DecodeString("f0f1f2f3f4f5f6f7f8f9")
	want, _ := hex.DecodeString(
		"3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865")
	got := HKDF(ikm, salt, info, 42)
	if !bytes.Equal(got, want) {
		t.Fatalf("HKDF = %x\nwant  %x", got, want)
	}
}

// TestHKDFRFC5869Vector3 checks the zero-salt path (salt defaulting).
func TestHKDFRFC5869Vector3(t *testing.T) {
	ikm, _ := hex.DecodeString("0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b")
	want, _ := hex.DecodeString(
		"8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8")
	got := HKDF(ikm, nil, nil, 42)
	if !bytes.Equal(got, want) {
		t.Fatalf("HKDF = %x\nwant  %x", got, want)
	}
}

func TestHKDFLongOutput(t *testing.T) {
	out := HKDF([]byte("secret"), nil, []byte("info"), 100)
	if len(out) != 100 {
		t.Fatalf("length = %d", len(out))
	}
	// Prefix property: shorter requests are prefixes of longer ones.
	short := HKDF([]byte("secret"), nil, []byte("info"), 32)
	if !bytes.Equal(out[:32], short) {
		t.Fatal("HKDF is not prefix-consistent")
	}
}

func TestHKDFPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero length")
		}
	}()
	HKDF([]byte("s"), nil, nil, 0)
}

func testIdentities(t *testing.T) (*Identity, *Identity, *Identity) {
	t.Helper()
	r := StreamReader(rng.NewAESCTR(rng.SeedFromUint64(1)))
	a, err := NewIdentity("A", r)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewIdentity("B", r)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := NewIdentity("TP", r)
	if err != nil {
		t.Fatal(err)
	}
	return a, b, tp
}

func TestECDHAgreement(t *testing.T) {
	a, b, _ := testIdentities(t)
	ab, err := a.Master(b.PublicBytes())
	if err != nil {
		t.Fatal(err)
	}
	ba, err := b.Master(a.PublicBytes())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab, ba) {
		t.Fatal("pairwise masters disagree")
	}
}

func TestMasterRejectsGarbagePublicKey(t *testing.T) {
	a, _, _ := testIdentities(t)
	if _, err := a.Master([]byte("short")); err == nil {
		t.Fatal("invalid public key accepted")
	}
}

func TestSeedDerivationOrderIndependent(t *testing.T) {
	a, b, _ := testIdentities(t)
	m, _ := a.Master(b.PublicBytes())
	s1 := DeriveSeed(m, PurposePairRNG, "A", "B")
	s2 := DeriveSeed(m, PurposePairRNG, "B", "A")
	if s1 != s2 {
		t.Fatal("seed derivation depends on pair order")
	}
}

func TestPurposeSeparation(t *testing.T) {
	a, b, _ := testIdentities(t)
	m, _ := a.Master(b.PublicBytes())
	pair := DeriveSeed(m, PurposePairRNG, "A", "B")
	mask := DeriveSeed(m, PurposeMaskRNG, "A", "B")
	chn := DeriveKey(m, PurposeChannel, "A", "B")
	wrap := DeriveKey(m, PurposeGroupWrap, "A", "B")
	if pair == mask {
		t.Fatal("pair and mask seeds collide")
	}
	if chn == wrap || chn == [32]byte(pair) {
		t.Fatal("channel key collides with another purpose")
	}
}

func TestDistinctPairsDistinctSecrets(t *testing.T) {
	a, b, tp := testIdentities(t)
	mab, _ := a.Master(b.PublicBytes())
	mat, _ := a.Master(tp.PublicBytes())
	if bytes.Equal(mab, mat) {
		t.Fatal("distinct pairs share a master secret")
	}
	sab := DeriveSeed(mab, PurposeMaskRNG, "A", "B")
	sat := DeriveSeed(mat, PurposeMaskRNG, "A", "TP")
	if sab == sat {
		t.Fatal("distinct pairs derive equal seeds")
	}
}

func TestEndToEndSharedGenerator(t *testing.T) {
	// The full flow the protocols rely on: handshake, derive rJT, and
	// confirm both ends observe the same PRNG stream.
	a, _, tp := testIdentities(t)
	mj, _ := a.Master(tp.PublicBytes())
	mt, _ := tp.Master(a.PublicBytes())
	gj := rng.NewAESCTR(DeriveSeed(mj, PurposeMaskRNG, a.ID(), tp.ID()))
	gt := rng.NewAESCTR(DeriveSeed(mt, PurposeMaskRNG, tp.ID(), a.ID()))
	for i := 0; i < 100; i++ {
		if gj.Next() != gt.Next() {
			t.Fatalf("shared stream diverged at %d", i)
		}
	}
}

func TestWrapUnwrapRoundTrip(t *testing.T) {
	var key [32]byte
	copy(key[:], []byte("0123456789abcdef0123456789abcdef"))
	secret := []byte("the-group-categorical-key-material")
	box, err := Wrap(key, secret, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unwrap(key, box)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Fatal("unwrap mismatch")
	}
}

func TestUnwrapDetectsTamperingAndWrongKey(t *testing.T) {
	var key, other [32]byte
	key[0], other[0] = 1, 2
	box, err := Wrap(key, []byte("payload"), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unwrap(other, box); err == nil {
		t.Fatal("wrong key accepted")
	}
	box[len(box)-1] ^= 1
	if _, err := Unwrap(key, box); err == nil {
		t.Fatal("tampered box accepted")
	}
	if _, err := Unwrap(key, box[:4]); err == nil {
		t.Fatal("truncated box accepted")
	}
}

func TestWrapNonceVariety(t *testing.T) {
	var key [32]byte
	b1, _ := Wrap(key, []byte("x"), rand.Reader)
	b2, _ := Wrap(key, []byte("x"), rand.Reader)
	if bytes.Equal(b1, b2) {
		t.Fatal("two wraps produced identical boxes (nonce reuse?)")
	}
}

func TestNewIdentityValidation(t *testing.T) {
	if _, err := NewIdentity("", rand.Reader); err == nil {
		t.Fatal("empty id accepted")
	}
}

func TestStreamReaderDeterminism(t *testing.T) {
	r1 := StreamReader(rng.NewXoshiro(rng.SeedFromUint64(5)))
	r2 := StreamReader(rng.NewXoshiro(rng.SeedFromUint64(5)))
	b1 := make([]byte, 100)
	b2 := make([]byte, 100)
	if _, err := r1.Read(b1); err != nil {
		t.Fatal(err)
	}
	// Read in odd chunks to exercise the leftover path.
	for off := 0; off < 100; {
		n, err := r2.Read(b2[off:min(off+7, 100)])
		if err != nil {
			t.Fatal(err)
		}
		off += n
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("stream reader chunking changed output")
	}
}

// TestNewIdentityDeterministic pins that identity generation consumes its
// randomness deterministically: two identities drawn from identical
// streams must coincide. ecdh.GenerateKey would break this — it reads an
// extra byte from the source with scheduler-dependent probability
// (randutil.MaybeReadByte), which once made identically-seeded sessions
// derive different protocol masks and flip float64 reports by an ulp.
func TestNewIdentityDeterministic(t *testing.T) {
	for i := 0; i < 32; i++ {
		seed := rng.SeedFromUint64(uint64(1000 + i))
		a, err := NewIdentity("A", StreamReader(rng.NewAESCTR(seed)))
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewIdentity("A", StreamReader(rng.NewAESCTR(seed)))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.PublicBytes(), b.PublicBytes()) {
			t.Fatalf("iteration %d: identically-seeded identities differ", i)
		}
	}
}
