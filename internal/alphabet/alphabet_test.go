package alphabet

import (
	"testing"
	"testing/quick"
)

func TestNewRejectsEmptyAndDuplicates(t *testing.T) {
	if _, err := New("empty", nil); err == nil {
		t.Fatal("empty alphabet accepted")
	}
	if _, err := New("dup", []rune("abca")); err == nil {
		t.Fatal("duplicate symbols accepted")
	}
}

func TestPredefinedSizes(t *testing.T) {
	cases := []struct {
		a    *Alphabet
		size int
	}{
		{DNA, 4}, {Protein, 20}, {Lower, 26}, {Digits, 10}, {AlphaNum, 37},
	}
	for _, c := range cases {
		if c.a.Size() != c.size {
			t.Errorf("%s size = %d, want %d", c.a.Name(), c.a.Size(), c.size)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"dna", "protein", "lower", "digits", "alphanum", "DNA"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("klingon"); err == nil {
		t.Error("unknown alphabet accepted")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, s := range []string{"", "ACGT", "TTTT", "GATTACA"} {
		v, err := DNA.Encode(s)
		if err != nil {
			t.Fatalf("Encode(%q): %v", s, err)
		}
		if got := DNA.Decode(v); got != s {
			t.Fatalf("round trip %q -> %q", s, got)
		}
	}
}

func TestEncodeRejectsForeignRunes(t *testing.T) {
	if _, err := DNA.Encode("ACGU"); err == nil {
		t.Fatal("foreign rune accepted")
	}
	if DNA.Contains("ACGU") {
		t.Fatal("Contains accepted foreign rune")
	}
	if !DNA.Contains("GATTACA") {
		t.Fatal("Contains rejected valid string")
	}
}

func TestSymbolLookup(t *testing.T) {
	s, ok := DNA.Symbol('G')
	if !ok || s != 2 {
		t.Fatalf("Symbol('G') = %d,%v; want 2,true", s, ok)
	}
	if _, ok := DNA.Symbol('z'); ok {
		t.Fatal("Symbol accepted foreign rune")
	}
	if DNA.Rune(3) != 'T' {
		t.Fatal("Rune(3) != 'T'")
	}
}

func TestAddSubInverse(t *testing.T) {
	// Paper Figure 7 example is over A = {a,b,c,d}; verify on DNA (also
	// size 4) plus the larger alphabets via property test below.
	for x := Symbol(0); int(x) < DNA.Size(); x++ {
		for y := Symbol(0); int(y) < DNA.Size(); y++ {
			if got := DNA.Sub(DNA.Add(x, y), y); got != x {
				t.Fatalf("Sub(Add(%d,%d),%d) = %d", x, y, y, got)
			}
		}
	}
}

func TestQuickAddSubInverseAllAlphabets(t *testing.T) {
	for _, a := range []*Alphabet{DNA, Protein, Lower, Digits, AlphaNum} {
		a := a
		f := func(xr, yr uint16) bool {
			x := Symbol(int(xr) % a.Size())
			y := Symbol(int(yr) % a.Size())
			return a.Sub(a.Add(x, y), y) == x && a.Add(a.Sub(x, y), y) == x
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", a.Name(), err)
		}
	}
}

func TestAddVecCyclesMask(t *testing.T) {
	x := Lower.MustEncode("abcdef")
	mask := Lower.MustEncode("xy")
	got := Lower.Decode(Lower.AddVec(x, mask))
	// a+x(23)=x(23)... compute: a(0)+23=23→x, b(1)+24=25→z, c(2)+23=25→z,
	// d(3)+24=27%26=1→b, e(4)+23=27%26=1→b, f(5)+24=29%26=3→d.
	if got != "xzzbbd" {
		t.Fatalf("AddVec cycle = %q, want %q", got, "xzzbbd")
	}
}

func TestFigure7DisguiseExample(t *testing.T) {
	// Paper Figure 7: alphabet A={a,b,c,d}, S="abc", R="013" (symbol
	// offsets 0,1,3) gives S' = "acb". Reproduce with a custom alphabet.
	abcd := MustNew("abcd", []rune("abcd"))
	s := abcd.MustEncode("abc")
	r := []Symbol{0, 1, 3}
	got := abcd.Decode(abcd.AddVec(s, r))
	if got != "acb" {
		t.Fatalf("Figure 7 disguise = %q, want %q", got, "acb")
	}
}

func TestRunePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Rune out of range did not panic")
		}
	}()
	DNA.Rune(4)
}

func TestStringer(t *testing.T) {
	if DNA.String() != "alphabet(dna, 4 symbols)" {
		t.Fatalf("String() = %q", DNA.String())
	}
}
