// Package alphabet models the finite alphabets over which the alphanumeric
// comparison protocol operates.
//
// The İnan et al. protocol for alphanumeric attributes (paper Section 4.2)
// assumes a finite alphabet so that "addition of a random number and a
// character is another alphabet character": every character is identified
// with its index, and disguise/undisguise are addition/subtraction modulo
// the alphabet size. This package provides the index codec and the modular
// arithmetic, plus the standard alphabets used by the examples (DNA for the
// paper's bird-flu motivation, protein, lowercase Latin, digits).
package alphabet

import (
	"fmt"
	"strings"
)

// Symbol is a character's index within an Alphabet, in [0, Size).
type Symbol uint16

// Alphabet is an ordered finite set of runes. The zero value is unusable;
// construct with New or use a predefined alphabet.
type Alphabet struct {
	name    string
	symbols []rune
	index   map[rune]Symbol
}

// New builds an alphabet named name over the given runes, preserving order.
// Duplicate runes are rejected, as is an empty set.
func New(name string, runes []rune) (*Alphabet, error) {
	if len(runes) == 0 {
		return nil, fmt.Errorf("alphabet %q: no symbols", name)
	}
	if len(runes) > 1<<16 {
		return nil, fmt.Errorf("alphabet %q: %d symbols exceeds the 65536 Symbol limit", name, len(runes))
	}
	a := &Alphabet{
		name:    name,
		symbols: append([]rune(nil), runes...),
		index:   make(map[rune]Symbol, len(runes)),
	}
	for i, r := range a.symbols {
		if _, dup := a.index[r]; dup {
			return nil, fmt.Errorf("alphabet %q: duplicate symbol %q", name, r)
		}
		a.index[r] = Symbol(i)
	}
	return a, nil
}

// MustNew is New but panics on error; intended for package-level variables.
func MustNew(name string, runes []rune) *Alphabet {
	a, err := New(name, runes)
	if err != nil {
		panic(err)
	}
	return a
}

// Predefined alphabets.
var (
	// DNA is the four-letter nucleotide alphabet.
	DNA = MustNew("dna", []rune("ACGT"))
	// Protein is the 20-letter amino-acid alphabet.
	Protein = MustNew("protein", []rune("ACDEFGHIKLMNPQRSTVWY"))
	// Lower is the lowercase Latin alphabet.
	Lower = MustNew("lower", []rune("abcdefghijklmnopqrstuvwxyz"))
	// Digits is the decimal digit alphabet.
	Digits = MustNew("digits", []rune("0123456789"))
	// AlphaNum covers lowercase letters, digits and space — a practical
	// alphabet for free-text identifiers in record-linkage scenarios.
	AlphaNum = MustNew("alphanum", []rune("abcdefghijklmnopqrstuvwxyz0123456789 "))
)

// ByName resolves a predefined alphabet by its name, for CLI flags and
// serialized schemas.
func ByName(name string) (*Alphabet, error) {
	switch strings.ToLower(name) {
	case "dna":
		return DNA, nil
	case "protein":
		return Protein, nil
	case "lower":
		return Lower, nil
	case "digits":
		return Digits, nil
	case "alphanum":
		return AlphaNum, nil
	default:
		return nil, fmt.Errorf("alphabet: unknown alphabet %q", name)
	}
}

// Name returns the alphabet's name.
func (a *Alphabet) Name() string { return a.name }

// Size returns the number of symbols.
func (a *Alphabet) Size() int { return len(a.symbols) }

// Rune returns the rune at symbol index s.
func (a *Alphabet) Rune(s Symbol) rune {
	if int(s) >= len(a.symbols) {
		panic(fmt.Sprintf("alphabet %q: symbol %d out of range", a.name, s))
	}
	return a.symbols[s]
}

// Symbol returns the index of rune r, reporting whether r belongs to the
// alphabet.
func (a *Alphabet) Symbol(r rune) (Symbol, bool) {
	s, ok := a.index[r]
	return s, ok
}

// Contains reports whether every rune of s belongs to the alphabet.
func (a *Alphabet) Contains(s string) bool {
	for _, r := range s {
		if _, ok := a.index[r]; !ok {
			return false
		}
	}
	return true
}

// Encode converts a string into its symbol vector. It fails on the first
// rune outside the alphabet.
func (a *Alphabet) Encode(s string) ([]Symbol, error) {
	out := make([]Symbol, 0, len(s))
	for _, r := range s {
		sym, ok := a.index[r]
		if !ok {
			return nil, fmt.Errorf("alphabet %q: rune %q not in alphabet", a.name, r)
		}
		out = append(out, sym)
	}
	return out, nil
}

// MustEncode is Encode but panics on error; intended for tests and examples
// with known-good literals.
func (a *Alphabet) MustEncode(s string) []Symbol {
	v, err := a.Encode(s)
	if err != nil {
		panic(err)
	}
	return v
}

// Decode converts a symbol vector back into a string.
func (a *Alphabet) Decode(v []Symbol) string {
	var b strings.Builder
	b.Grow(len(v))
	for _, s := range v {
		b.WriteRune(a.Rune(s))
	}
	return b.String()
}

// Add returns (x + y) mod Size: the disguise operation of the alphanumeric
// protocol.
func (a *Alphabet) Add(x, y Symbol) Symbol {
	return Symbol((int(x) + int(y)) % len(a.symbols))
}

// Sub returns (x − y) mod Size: the responder's differencing operation.
func (a *Alphabet) Sub(x, y Symbol) Symbol {
	n := len(a.symbols)
	return Symbol(((int(x)-int(y))%n + n) % n)
}

// AddVec returns element-wise (x + mask) mod Size. The mask is cycled if it
// is shorter than x, mirroring the protocol's reuse of the regenerated
// random stream prefix.
func (a *Alphabet) AddVec(x, mask []Symbol) []Symbol {
	out := make([]Symbol, len(x))
	for i, s := range x {
		out[i] = a.Add(s, mask[i%len(mask)])
	}
	return out
}

// String implements fmt.Stringer.
func (a *Alphabet) String() string {
	return fmt.Sprintf("alphabet(%s, %d symbols)", a.name, len(a.symbols))
}
