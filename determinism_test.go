// Determinism tests for the parallel-execution engine: the Parallelism
// knob must change scheduling only, never results. Sessions with workers
// 1, 2 and GOMAXPROCS (0) are required to produce bit-identical
// dissimilarity matrices and identical published clusterings. Running
// this package under -race additionally exercises the in-memory driver's
// parallel hot paths for data races.
package ppclust_test

import (
	"fmt"
	"testing"

	"ppclust"
	"ppclust/internal/rng"
)

// determinismData builds a 3-holder mixed-type workload covering every
// protocol path: numeric (blinded comparison), ordered (rank protocol),
// alphanumeric (CCM edit distance), categorical and hierarchical
// (deterministic encryption at the third party).
func determinismData(t *testing.T) (ppclust.Schema, []ppclust.Partition) {
	t.Helper()
	tax := ppclust.MustNewTaxonomy("disease")
	if err := tax.Add("viral", "disease"); err != nil {
		t.Fatal(err)
	}
	if err := tax.Add("bacterial", "disease"); err != nil {
		t.Fatal(err)
	}
	if err := tax.Add("flu", "viral"); err != nil {
		t.Fatal(err)
	}
	if err := tax.Add("measles", "viral"); err != nil {
		t.Fatal(err)
	}
	if err := tax.Add("strep", "bacterial"); err != nil {
		t.Fatal(err)
	}
	schema := ppclust.Schema{Attrs: []ppclust.Attribute{
		{Name: "age", Type: ppclust.Numeric},
		{Name: "severity", Type: ppclust.Ordered, Order: ppclust.MustNewOrdering("mild", "moderate", "severe")},
		{Name: "dna", Type: ppclust.Alphanumeric, Alphabet: ppclust.DNA},
		{Name: "city", Type: ppclust.Categorical},
		{Name: "diagnosis", Type: ppclust.Hierarchical, Taxonomy: tax},
	}}

	s := rng.NewXoshiro(rng.SeedFromUint64(2026))
	severities := []string{"mild", "moderate", "severe"}
	cities := []string{"ankara", "istanbul", "izmir", "bursa"}
	diagnoses := []string{"flu", "measles", "strep", "viral", "disease"}
	bases := "ACGT"
	parts := make([]ppclust.Partition, 3)
	for pi, site := range []string{"A", "B", "C"} {
		tab := ppclust.MustNewTable(schema)
		for r := 0; r < 12+3*pi; r++ {
			dna := make([]byte, 6+rng.Symbol(s, 5))
			for i := range dna {
				dna[i] = bases[rng.Symbol(s, 4)]
			}
			tab.MustAppendRow(
				float64(rng.Symbol(s, 90)),
				severities[rng.Symbol(s, len(severities))],
				string(dna),
				cities[rng.Symbol(s, len(cities))],
				diagnoses[rng.Symbol(s, len(diagnoses))],
			)
		}
		parts[pi] = ppclust.Partition{Site: site, Table: tab}
	}
	return schema, parts
}

// TestParallelismDeterminism runs full sessions at Parallelism 1, 2 and
// GOMAXPROCS and requires bit-identical attribute matrices
// (EqualWithin(0)) and identical published results.
func TestParallelismDeterminism(t *testing.T) {
	schema, parts := determinismData(t)
	type run struct {
		ms  []*ppclust.DissimilarityMatrix
		fmt string
	}
	runAt := func(workers int) run {
		out, err := ppclust.Cluster(schema, parts,
			map[string]ppclust.ClusterRequest{"A": {Linkage: ppclust.Average, K: 3}},
			ppclust.Options{Parallelism: workers, Random: detRandom})
		if err != nil {
			t.Fatalf("Parallelism=%d: %v", workers, err)
		}
		return run{ms: out.Report.AttributeMatrices, fmt: out.Results["A"].Format()}
	}
	ref := runAt(1)
	for _, workers := range []int{2, 0} { // 0 = GOMAXPROCS
		got := runAt(workers)
		if got.fmt != ref.fmt {
			t.Errorf("Parallelism=%d published different clusters:\n%s\nvs serial:\n%s", workers, got.fmt, ref.fmt)
		}
		for attr := range ref.ms {
			if !got.ms[attr].EqualWithin(ref.ms[attr], 0) {
				t.Errorf("Parallelism=%d: attribute %d matrix differs from serial (want bit-identical)", workers, attr)
			}
		}
	}

	// BuildDissimilarity goes through the same engine; pin it too.
	refMs, _, err := ppclust.BuildDissimilarity(schema, parts, ppclust.Options{Parallelism: 1, Random: detRandom})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 0} {
		ms, _, err := ppclust.BuildDissimilarity(schema, parts, ppclust.Options{Parallelism: workers, Random: detRandom})
		if err != nil {
			t.Fatal(err)
		}
		for attr := range refMs {
			if !ms[attr].EqualWithin(refMs[attr], 0) {
				t.Errorf("BuildDissimilarity Parallelism=%d: attribute %d differs", workers, attr)
			}
		}
	}
}

// TestParallelismVariants checks determinism holds for the int64 and
// mod-p protocol variants as well (numeric attributes only, since those
// variants require integral values).
func TestParallelismVariants(t *testing.T) {
	schema := ppclust.Schema{Attrs: []ppclust.Attribute{{Name: "x", Type: ppclust.Numeric}}}
	s := rng.NewXoshiro(rng.SeedFromUint64(7))
	parts := make([]ppclust.Partition, 2)
	for pi, site := range []string{"A", "B"} {
		tab := ppclust.MustNewTable(schema)
		for r := 0; r < 40; r++ {
			tab.MustAppendRow(float64(rng.Symbol(s, 1<<20)))
		}
		parts[pi] = ppclust.Partition{Site: site, Table: tab}
	}
	for _, v := range []ppclust.NumericVariant{ppclust.Int64Arithmetic, ppclust.ModPArithmetic} {
		t.Run(fmt.Sprintf("variant=%d", v), func(t *testing.T) {
			ref, _, err := ppclust.BuildDissimilarity(schema, parts, ppclust.Options{Variant: v, Parallelism: 1, Random: detRandom})
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := ppclust.BuildDissimilarity(schema, parts, ppclust.Options{Variant: v, Parallelism: 0, Random: detRandom})
			if err != nil {
				t.Fatal(err)
			}
			if !got[0].EqualWithin(ref[0], 0) {
				t.Error("parallel output differs from serial")
			}
		})
	}
}
