// Ablation benchmarks for the design choices DESIGN.md calls out: channel
// encryption, generator kind, numeric arithmetic variant, and masking mode
// are each toggled in isolation on a fixed workload.
package ppclust_test

import (
	"testing"

	"ppclust/internal/dataset"
	"ppclust/internal/party"
	"ppclust/internal/protocol"
	"ppclust/internal/rng"
)

func ablationParts(b *testing.B) []dataset.Partition {
	b.Helper()
	schema := dataset.Schema{Attrs: []dataset.Attribute{{Name: "x", Type: dataset.Numeric}}}
	s := rng.NewXoshiro(rng.SeedFromUint64(77))
	parts := make([]dataset.Partition, 2)
	for i, site := range []string{"A", "B"} {
		t := dataset.MustNewTable(schema)
		for r := 0; r < 96; r++ {
			t.MustAppendRow(float64(rng.Int64n(s, 1000)))
		}
		parts[i] = dataset.Partition{Site: site, Table: t}
	}
	return parts
}

func runAblation(b *testing.B, cfg party.Config, parts []dataset.Partition) {
	b.Helper()
	cfg.Schema = parts[0].Table.Schema()
	for i := 0; i < b.N; i++ {
		if _, err := party.RunInMemory(cfg, parts, nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationChannels isolates the AES-GCM channel cost: the paper
// mandates secured channels; this measures what that mandate costs.
func BenchmarkAblationChannels(b *testing.B) {
	parts := ablationParts(b)
	b.Run("secured", func(b *testing.B) {
		runAblation(b, party.Config{Variant: party.Float64Variant}, parts)
	})
	b.Run("plaintext", func(b *testing.B) {
		runAblation(b, party.Config{Variant: party.Float64Variant, PlaintextChannels: true}, parts)
	})
}

// BenchmarkAblationRNG isolates the shared-generator choice: the
// cryptographic AES-CTR stream the privacy argument wants versus the fast
// xoshiro stream.
func BenchmarkAblationRNG(b *testing.B) {
	parts := ablationParts(b)
	b.Run("aesctr", func(b *testing.B) {
		runAblation(b, party.Config{Variant: party.Float64Variant, RNG: rng.KindAESCTR}, parts)
	})
	b.Run("xoshiro", func(b *testing.B) {
		runAblation(b, party.Config{Variant: party.Float64Variant, RNG: rng.KindXoshiro}, parts)
	})
}

// BenchmarkAblationVariant isolates the numeric arithmetic: float64 and
// int64 blind with bounded masks; mod-p pays big.Int costs for perfect
// hiding.
func BenchmarkAblationVariant(b *testing.B) {
	parts := ablationParts(b)
	for _, v := range []party.Variant{party.Float64Variant, party.Int64Variant, party.ModPVariant} {
		b.Run(v.String(), func(b *testing.B) {
			runAblation(b, party.Config{Variant: v}, parts)
		})
	}
}

// BenchmarkAblationMasking isolates batch vs per-pair masking end to end
// (the security/traffic trade-off of paper Section 4.1).
func BenchmarkAblationMasking(b *testing.B) {
	parts := ablationParts(b)
	b.Run("batch", func(b *testing.B) {
		runAblation(b, party.Config{Variant: party.Float64Variant, Mode: protocol.Batch}, parts)
	})
	b.Run("per-pair", func(b *testing.B) {
		runAblation(b, party.Config{Variant: party.Float64Variant, Mode: protocol.PerPair}, parts)
	})
}
