package ppclust

import (
	"context"
	"io"
	"time"

	"ppclust/internal/alphabet"
	"ppclust/internal/catdist"
	"ppclust/internal/dataset"
	"ppclust/internal/dissim"
	"ppclust/internal/hcluster"
	"ppclust/internal/linkage"
	"ppclust/internal/netid"
	"ppclust/internal/outlier"
	"ppclust/internal/pam"
	"ppclust/internal/party"
	"ppclust/internal/protocol"
	"ppclust/internal/rng"
)

// Data-model types, re-exported from the internal packages so that the
// whole public surface lives in one import.
type (
	// Schema is the attribute list all parties agree on.
	Schema = dataset.Schema
	// Attribute describes one column: name, type, alphabet, weight.
	Attribute = dataset.Attribute
	// AttrType classifies an attribute.
	AttrType = dataset.AttrType
	// Table is one site's horizontal partition.
	Table = dataset.Table
	// Partition couples a site name with its table.
	Partition = dataset.Partition
	// ObjectID globally names an object as (site, index).
	ObjectID = dataset.ObjectID
	// Alphabet is a finite symbol set for alphanumeric attributes.
	Alphabet = alphabet.Alphabet
	// Ordering is a public total order for Ordered attributes.
	Ordering = catdist.Ordering
	// Taxonomy is a public category tree for Hierarchical attributes.
	Taxonomy = catdist.Taxonomy

	// ClusterRequest is a holder's weights and algorithm choice.
	ClusterRequest = party.ClusterRequest
	// Method selects the clustering algorithm the third party runs.
	Method = party.Method
	// Result is the published clustering outcome.
	Result = party.Result
	// SessionOutcome bundles results, the third-party report and traffic.
	SessionOutcome = party.SessionOutcome
	// TPReport is the third party's assembled state.
	TPReport = party.TPReport
	// Traffic maps directed links to byte counters.
	Traffic = party.Traffic

	// DissimilarityMatrix is the symmetric object-by-object structure at
	// the core of the protocol.
	DissimilarityMatrix = dissim.Matrix
	// Dendrogram is a hierarchical clustering merge history.
	Dendrogram = hcluster.Dendrogram
	// Linkage selects the hierarchical method.
	Linkage = hcluster.Linkage
	// ClusterQuality is the per-cluster statistic the third party may
	// publish.
	ClusterQuality = hcluster.ClusterQuality

	// Match is a record-linkage candidate pair.
	Match = linkage.Match
	// LinkOptions tunes record linkage.
	LinkOptions = linkage.Options
	// OutlierScore is one object's k-NN outlier statistic.
	OutlierScore = outlier.Score
)

// Attribute types.
const (
	// Numeric attributes compare by |x−y|.
	Numeric = dataset.Numeric
	// Categorical attributes compare by equality.
	Categorical = dataset.Categorical
	// Alphanumeric attributes compare by edit distance.
	Alphanumeric = dataset.Alphanumeric
	// Ordered attributes compare by rank distance over a public total
	// order (extension of the paper's future work).
	Ordered = dataset.Ordered
	// Hierarchical attributes compare by tree distance over a public
	// taxonomy (extension of the paper's future work).
	Hierarchical = dataset.Hierarchical
)

// NewOrdering builds the public total order of an Ordered attribute.
func NewOrdering(values ...string) (*Ordering, error) { return catdist.NewOrdering(values) }

// MustNewOrdering is NewOrdering panicking on error.
func MustNewOrdering(values ...string) *Ordering { return catdist.MustNewOrdering(values...) }

// NewTaxonomy builds the public category tree of a Hierarchical attribute;
// grow it with Add/MustAdd.
func NewTaxonomy(root string) (*Taxonomy, error) { return catdist.NewTaxonomy(root) }

// MustNewTaxonomy is NewTaxonomy panicking on error.
func MustNewTaxonomy(root string) *Taxonomy { return catdist.MustNewTaxonomy(root) }

// Hierarchical linkages.
const (
	Single   = hcluster.Single
	Complete = hcluster.Complete
	Average  = hcluster.Average
	Weighted = hcluster.Weighted
	Centroid = hcluster.Centroid
	Median   = hcluster.Median
	Ward     = hcluster.Ward
)

// Clustering methods a holder may request.
const (
	// MethodAgglomerative is bottom-up hierarchical clustering (default).
	MethodAgglomerative = party.MethodAgglomerative
	// MethodDiana is top-down divisive hierarchical clustering.
	MethodDiana = party.MethodDiana
	// MethodPAM is k-medoids: a partitioning method that, unlike k-means,
	// consumes dissimilarities and so handles every attribute type.
	MethodPAM = party.MethodPAM
)

// HClusterDiana builds a divisive (DIANA) dendrogram of a dissimilarity
// matrix.
func HClusterDiana(m *DissimilarityMatrix) (*Dendrogram, error) {
	return hcluster.Diana(m)
}

// PAMResult is a k-medoids outcome.
type PAMResult = pam.Result

// PAM clusters a dissimilarity matrix around k medoids; seed breaks build
// ties deterministically.
func PAM(m *DissimilarityMatrix, k int, seed uint64) (*PAMResult, error) {
	return pam.Cluster(m, k, rng.NewXoshiro(rng.SeedFromUint64(seed)), pam.Config{})
}

// Predefined alphabets.
var (
	// DNA is the four-letter nucleotide alphabet.
	DNA = alphabet.DNA
	// Protein is the 20-letter amino-acid alphabet.
	Protein = alphabet.Protein
	// Lower is the lowercase Latin alphabet.
	Lower = alphabet.Lower
	// Digits is the decimal digit alphabet.
	Digits = alphabet.Digits
	// AlphaNum is lowercase letters, digits and space.
	AlphaNum = alphabet.AlphaNum
)

// NewAlphabet builds a custom alphabet over the given runes.
func NewAlphabet(name string, runes []rune) (*Alphabet, error) {
	return alphabet.New(name, runes)
}

// AlphabetByName resolves a predefined alphabet ("dna", "protein", "lower",
// "digits", "alphanum").
func AlphabetByName(name string) (*Alphabet, error) { return alphabet.ByName(name) }

// NewTable returns an empty table over the schema.
func NewTable(schema Schema) (*Table, error) { return dataset.NewTable(schema) }

// MustNewTable is NewTable panicking on error.
func MustNewTable(schema Schema) *Table { return dataset.MustNewTable(schema) }

// ReadCSV parses headerless CSV into a table over the schema.
func ReadCSV(schema Schema, r io.Reader) (*Table, error) { return dataset.ReadCSV(schema, r) }

// WriteCSV emits a table as headerless CSV.
func WriteCSV(t *Table, w io.Writer) error { return dataset.WriteCSV(t, w) }

// GlobalIndex returns the global object ordering of a partition list.
func GlobalIndex(parts []Partition) []ObjectID { return dataset.GlobalIndex(parts) }

// ParseLinkage resolves a linkage name ("single", "complete", "average",
// "weighted", "centroid", "median", "ward").
func ParseLinkage(name string) (Linkage, error) { return hcluster.ParseLinkage(name) }

// MaskingMode selects how the numeric protocol consumes its shared
// random streams.
type MaskingMode int

const (
	// BatchMasking is the paper's default: O(n) initiator traffic, but
	// mask reuse admits a frequency-analysis attack when the attribute
	// domain is small (paper Section 4.1).
	BatchMasking MaskingMode = iota
	// PerPairMasking uses unique masks per object pair, the paper's
	// countermeasure, at O(m·n) initiator traffic.
	PerPairMasking
)

// NumericVariant selects the numeric protocol arithmetic.
type NumericVariant int

const (
	// Float64Arithmetic recovers distances to ≈1e-9 at unit scale.
	Float64Arithmetic NumericVariant = iota
	// Int64Arithmetic is exact; values must be integral and bounded.
	Int64Arithmetic
	// ModPArithmetic is exact with perfectly hiding masks; values must be
	// integral.
	ModPArithmetic
)

// Options tunes a session. The zero value is the recommended
// configuration: float64 arithmetic, batch masking, AES-CTR generators and
// AES-GCM channels.
type Options struct {
	// Masking selects batch or per-pair numeric masking.
	Masking MaskingMode
	// Variant selects the numeric arithmetic.
	Variant NumericVariant
	// InsecureChannels disables channel encryption. Never enable outside
	// experiments; the paper's privacy analysis requires secured channels.
	InsecureChannels bool
	// Parallelism sets the worker count every party uses for its O(n²)
	// hot paths: local dissimilarity construction, the protocol's
	// disguise and mask-stripping steps, the third party's CCM
	// edit-distance evaluation, global assembly, weighted merging,
	// normalization, and the clustering stage itself (agglomerative
	// Lance–Williams row updates, DIANA's splinter scans, PAM's BUILD
	// and swap scoring, published quality and silhouette statistics).
	// 0 (the default) uses all cores (GOMAXPROCS); 1 runs serially.
	// Every setting produces bit-identical results — the engine only
	// changes how the work is scheduled, never what is computed.
	Parallelism int
	// StreamChunkBytes bounds the frames the session's partition-sized
	// payloads stream in: each local dissimilarity triangle (holder →
	// third party) and each pairwise-protocol masked comparison matrix
	// (responder → third party — the payload that grows with BOTH
	// partitions) is cut into row ranges of at most this many payload
	// bytes (never less than one row per frame), and the third party
	// installs or unmasks each range as it arrives. Assembly of an
	// attribute thus overlaps that attribute's own wire time, and no
	// session message grows with the partition — session size is
	// memory-bound rather than capped by the transport's frame limit.
	// 0 (the default) uses 256 KiB; negative restores the monolithic
	// one-frame-per-payload wire shape. Like Parallelism, the knob is
	// pure scheduling: chunking changes framing only, never values, so
	// results are bit-identical at every setting. See docs/WIRE.md for
	// the chunk-frame schemas.
	StreamChunkBytes int
	// TPShards splits the third party into this many row-range shards
	// with a merge coordinator: each shard owns a contiguous range of the
	// session's global rows, holders fan their comparison-attribute chunk
	// streams to the owning shard's conduit, and the coordinator merges
	// the assembled slices before clustering. Peak per-shard resident
	// memory drops roughly by the shard count; results are bit-identical
	// to the single-TP session at every setting. 0 and 1 both select the
	// single-TP path. The count is part of the session agreement: every
	// party must run the same value, and holders need one extra conduit
	// per shard (TPShardConduitName) next to the control conduit. See
	// docs/ARCHITECTURE.md ("Sharded third party").
	TPShards int
	// Random supplies per-party randomness (nil = crypto/rand), used by
	// tests and reproducible experiments.
	Random func(partyName string) io.Reader
	// SessionTimeout bounds each party's whole session, handshake through
	// result; exceeding it fails that party with ErrSessionTimeout, its
	// peers are notified with an abort frame, and every pipeline unwinds.
	// 0 (the default) disables the bound.
	SessionTimeout time.Duration
	// PhaseTimeout bounds inactivity: a per-party watchdog fails the
	// session with ErrSessionTimeout naming the stalled phase when no
	// frame moves in either direction for this long — a wedged peer
	// becomes a descriptive error instead of a hang. 0 (the default)
	// disables the watchdog.
	PhaseTimeout time.Duration
	// ReconnectWindow arms mid-session reconnect: when positive, a
	// severed holder↔third-party conduit parks the session in a degraded
	// state for this grace period instead of aborting it. The third party
	// accepts a version-3 resume hello for the severed lane within the
	// window (the multi-tenant server routes these automatically), replays
	// exactly the frames past the peer's installed watermark, and the
	// session continues bit-identically to a fault-free run. A holder
	// additionally needs a redial path: NewResumableHolderSession for TCP
	// deployments (cmd/ppc-holder wires it from -connect-retries /
	// -connect-backoff). If the window expires with the lane still down,
	// the session fails under ErrSessionTimeout naming the degraded phase;
	// a sever with no window (the 0 default) fails immediately under
	// ErrDisconnected. The window is part of the session agreement: run
	// the same value on every party. See docs/ARCHITECTURE.md
	// ("Degraded sessions & resume").
	ReconnectWindow time.Duration
}

func (o Options) toConfig(schema Schema) party.Config {
	cfg := party.Config{
		Schema:            schema,
		Variant:           party.Variant(o.Variant),
		PlaintextChannels: o.InsecureChannels,
		Parallelism:       o.Parallelism,
		LocalChunkBytes:   o.StreamChunkBytes,
		TPShards:          o.TPShards,
		SessionTimeout:    o.SessionTimeout,
		PhaseTimeout:      o.PhaseTimeout,
		ResumeWindow:      o.ReconnectWindow,
		RNG:               rng.KindAESCTR,
	}
	if o.Masking == PerPairMasking {
		cfg.Mode = protocol.PerPair
	}
	return cfg
}

// Session failure classification. Every abnormal session end is wrapped
// under one of these sentinels; test with errors.Is.
var (
	// ErrSessionTimeout classifies watchdog failures: a party exceeded
	// Options.SessionTimeout, or no traffic moved for Options.PhaseTimeout.
	ErrSessionTimeout = party.ErrSessionTimeout
	// ErrAborted classifies deliberate terminations: a peer failed and
	// sent an abort frame naming its reason, or the caller cancelled the
	// context passed to ClusterContext.
	ErrAborted = party.ErrAborted
	// ErrSessionRefused classifies typed admission refusals from the
	// multi-tenant third-party server: the hello was answered with a
	// ppc/reject frame (capacity, queue-full, budget, draining, version
	// skew, …) instead of an accept. Holders see it from the admission
	// wait; the reject frame's reason survives in the error text.
	ErrSessionRefused = netid.ErrRejected
	// ErrDisconnected classifies unrecoverable mid-session transport
	// severs: a conduit died after the handshake with no reconnect window
	// armed (Options.ReconnectWindow zero), or the resume path refused
	// terminally (stale watermarks, duplicate holder, session already
	// aborted). A window that expires with the lane still down is
	// classified ErrSessionTimeout instead, naming the degraded phase.
	ErrDisconnected = party.ErrDisconnected
)

// Cluster runs the complete multi-party session in-process: key agreement,
// the three comparison protocols, dissimilarity assembly, hierarchical
// clustering and result publication. parts must be in ascending site-name
// order; reqs maps holder names to their clustering requests (missing
// entries default to average linkage with k=2).
func Cluster(schema Schema, parts []Partition, reqs map[string]ClusterRequest, opts Options) (*SessionOutcome, error) {
	return ClusterContext(context.Background(), schema, parts, reqs, opts)
}

// ClusterContext is Cluster bounded by a caller context: cancelling ctx
// aborts every party's session (classified under ErrAborted) and unwinds
// promptly even mid-stream.
func ClusterContext(ctx context.Context, schema Schema, parts []Partition, reqs map[string]ClusterRequest, opts Options) (*SessionOutcome, error) {
	var random party.RandomSource
	if opts.Random != nil {
		random = opts.Random
	}
	return party.RunInMemoryContext(ctx, opts.toConfig(schema), parts, reqs, random)
}

// BuildDissimilarity runs the session's construction phase and returns the
// third party's normalized per-attribute matrices together with the global
// object index — the substrate for record linkage, outlier detection or a
// caller-supplied clustering algorithm. One clustering request is still
// exchanged to complete the protocol; its result is discarded.
func BuildDissimilarity(schema Schema, parts []Partition, opts Options) ([]*DissimilarityMatrix, []ObjectID, error) {
	out, err := Cluster(schema, parts, nil, opts)
	if err != nil {
		return nil, nil, err
	}
	return out.Report.AttributeMatrices, out.Report.ObjectIDs, nil
}

// MergeMatrices combines per-attribute matrices under a weight vector, as
// the third party does before clustering.
func MergeMatrices(ms []*DissimilarityMatrix, weights []float64) (*DissimilarityMatrix, error) {
	return dissim.WeightedMerge(ms, weights)
}

// HCluster builds the dendrogram of a dissimilarity matrix.
func HCluster(m *DissimilarityMatrix, link Linkage) (*Dendrogram, error) {
	return hcluster.Cluster(m, link)
}

// Quality computes the per-cluster statistics the third party publishes.
func Quality(m *DissimilarityMatrix, clusters [][]int) ([]ClusterQuality, error) {
	return hcluster.Quality(m, clusters)
}

// Silhouette scores a labeling over a dissimilarity matrix.
func Silhouette(m *DissimilarityMatrix, labels []int) (float64, error) {
	return hcluster.Silhouette(m, labels)
}

// Link performs threshold record linkage over a dissimilarity matrix.
func Link(m *DissimilarityMatrix, ids []ObjectID, opts LinkOptions) ([]Match, error) {
	return linkage.Link(m, ids, opts)
}

// OutlierScores computes k-NN outlier statistics over a dissimilarity
// matrix.
func OutlierScores(m *DissimilarityMatrix, k int) ([]OutlierScore, error) {
	return outlier.KNNScores(m, k)
}

// TopOutliers returns the n most anomalous objects.
func TopOutliers(scores []OutlierScore, n int) []OutlierScore {
	return outlier.TopN(scores, n)
}

// CentralizedBaseline computes the per-attribute matrices a single trusted
// site would build from the pooled plaintext — the non-private reference
// the paper's "no loss of accuracy" claim is measured against.
func CentralizedBaseline(schema Schema, parts []Partition) ([]*DissimilarityMatrix, error) {
	ms, _, err := party.CentralizedMatrices(schema, parts)
	return ms, err
}
