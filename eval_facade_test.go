package ppclust_test

import (
	"testing"

	"ppclust"
)

func TestEvalFacade(t *testing.T) {
	truth := []int{0, 0, 1, 1}
	pred := []int{1, 1, 0, 0}
	for name, fn := range map[string]func([]int, []int) (float64, error){
		"rand": ppclust.RandIndex, "ari": ppclust.AdjustedRandIndex,
		"purity": ppclust.Purity, "nmi": ppclust.NMI,
	} {
		v, err := fn(truth, pred)
		if err != nil || v != 1 {
			t.Fatalf("%s = %v, %v", name, v, err)
		}
	}
}

func TestLabelsFromClusters(t *testing.T) {
	labels, err := ppclust.LabelsFromClusters([][]int{{0, 2}, {1}}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if labels[0] != 0 || labels[1] != 1 || labels[2] != 0 {
		t.Fatalf("labels = %v", labels)
	}
	if _, err := ppclust.LabelsFromClusters([][]int{{0}}, 2); err == nil {
		t.Fatal("unassigned object accepted")
	}
	if _, err := ppclust.LabelsFromClusters([][]int{{0}, {0}}, 1); err == nil {
		t.Fatal("double assignment accepted")
	}
	if _, err := ppclust.LabelsFromClusters([][]int{{5}}, 1); err == nil {
		t.Fatal("out-of-range accepted")
	}
}

func TestResultLabels(t *testing.T) {
	ids := []ppclust.ObjectID{{Site: "A", Index: 0}, {Site: "A", Index: 1}, {Site: "B", Index: 0}}
	res := &ppclust.Result{Clusters: [][]ppclust.ObjectID{
		{{Site: "A", Index: 0}, {Site: "B", Index: 0}},
		{{Site: "A", Index: 1}},
	}}
	labels, err := ppclust.ResultLabels(res, ids)
	if err != nil {
		t.Fatal(err)
	}
	if labels[0] != 0 || labels[1] != 1 || labels[2] != 0 {
		t.Fatalf("labels = %v", labels)
	}
	bad := &ppclust.Result{Clusters: [][]ppclust.ObjectID{{{Site: "Z", Index: 9}}}}
	if _, err := ppclust.ResultLabels(bad, ids); err == nil {
		t.Fatal("unknown object accepted")
	}
}

func TestParseSchema(t *testing.T) {
	s, err := ppclust.ParseSchema("age:numeric,city:categorical,seq:alphanumeric:dna,score:numeric:w=2.5")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Attrs) != 4 {
		t.Fatalf("attrs: %+v", s.Attrs)
	}
	if s.Attrs[2].Alphabet == nil || s.Attrs[2].Alphabet.Name() != "dna" {
		t.Fatal("alphabet not parsed")
	}
	if s.Attrs[3].Weight != 2.5 {
		t.Fatalf("weight = %v", s.Attrs[3].Weight)
	}
	for _, bad := range []string{
		"", "age", "age:float", "seq:alphanumeric", "seq:alphanumeric:klingon",
		"age:numeric:w=x", "age:numeric:opt", "a:numeric,a:numeric",
	} {
		if _, err := ppclust.ParseSchema(bad); err == nil {
			t.Fatalf("spec %q accepted", bad)
		}
	}
}
