// ppc-gen generates seeded synthetic datasets as CSV, optionally split
// into per-site partition files, for driving the protocol tools and
// experiments.
//
// Usage:
//
//	ppc-gen -kind dna -families 4 -per 10 -length 60 -out data.csv
//	ppc-gen -kind gaussian -clusters 3 -per 50 -dim 2 -sites 3 -out data.csv
//	ppc-gen -kind categorical -clusters 3 -per 40 -attrs 4 -out data.csv
//	ppc-gen -kind rings -per 100 -out data.csv
//
// With -sites k > 1, rows are dealt round-robin into data_A.csv,
// data_B.csv, …; a data.truth file records ground-truth labels in global
// order either way.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"ppclust"
)

func main() {
	kind := flag.String("kind", "gaussian", "dataset kind: gaussian, dna, categorical or rings")
	out := flag.String("out", "data.csv", "output CSV path")
	seed := flag.Uint64("seed", 1, "generator seed")
	sites := flag.Int("sites", 1, "number of sites to split across (round robin)")

	clusters := flag.Int("clusters", 3, "number of clusters/families")
	per := flag.Int("per", 50, "objects per cluster/family")
	dim := flag.Int("dim", 2, "gaussian: dimensions")
	spread := flag.Float64("spread", 10, "gaussian: distance between cluster centers")
	stddev := flag.Float64("stddev", 1, "gaussian: within-cluster standard deviation")
	length := flag.Int("length", 60, "dna: ancestor length")
	subRate := flag.Float64("subrate", 0.05, "dna: substitution rate")
	indelRate := flag.Float64("indelrate", 0.02, "dna: indel rate")
	attrs := flag.Int("attrs", 4, "categorical: attribute count")
	palette := flag.Int("palette", 10, "categorical: value palette size")
	fidelity := flag.Float64("fidelity", 0.85, "categorical: cluster fidelity")
	flag.Parse()

	var data *ppclust.LabeledData
	var err error
	switch *kind {
	case "gaussian":
		specs := make([]ppclust.GaussianCluster, *clusters)
		for c := range specs {
			center := make([]float64, *dim)
			for d := range center {
				if d == c%*dim {
					center[d] = float64(c) * *spread
				}
			}
			specs[c] = ppclust.GaussianCluster{Center: center, Stddev: *stddev, N: *per}
		}
		data, err = ppclust.GenGaussians(specs, *seed)
	case "dna":
		data, err = ppclust.GenDNAFamilies(ppclust.DNASpec{
			Families: *clusters, PerFamily: *per, Length: *length,
			SubRate: *subRate, IndelRate: *indelRate,
		}, *seed)
	case "categorical":
		data, err = ppclust.GenCategorical(*clusters, *per, *attrs, *palette, *fidelity, *seed)
	case "rings":
		data, err = ppclust.GenRings(*per, 2**per, 1, 5, 0.08, *seed)
	default:
		log.Fatalf("unknown kind %q", *kind)
	}
	if err != nil {
		log.Fatal(err)
	}

	if *sites <= 1 {
		if err := writeCSV(*out, data.Table); err != nil {
			log.Fatal(err)
		}
		if err := writeTruth(*out, data.Truth); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d rows to %s\n", data.Table.Len(), *out)
		return
	}

	parts, truth, err := ppclust.SplitRoundRobin(data, *sites)
	if err != nil {
		log.Fatal(err)
	}
	ext := filepath.Ext(*out)
	base := strings.TrimSuffix(*out, ext)
	for _, p := range parts {
		path := fmt.Sprintf("%s_%s%s", base, p.Site, ext)
		if err := writeCSV(path, p.Table); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d rows to %s\n", p.Table.Len(), path)
	}
	if err := writeTruth(*out, truth); err != nil {
		log.Fatal(err)
	}
}

func writeCSV(path string, t *ppclust.Table) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return ppclust.WriteCSV(t, f)
}

func writeTruth(out string, truth []int) error {
	path := strings.TrimSuffix(out, filepath.Ext(out)) + ".truth"
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	for _, l := range truth {
		if _, err := fmt.Fprintln(f, l); err != nil {
			return err
		}
	}
	return nil
}
