// ppc-tp runs the third party of the privacy-preserving clustering protocol
// as a TCP server: it accepts one connection per expected data holder, runs
// the session and prints what it published.
//
// Usage:
//
//	ppc-tp -listen :9000 -holders A,B,C \
//	    -schema "age:numeric,diag:categorical,seq:alphanumeric:dna"
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"ppclust"
	"ppclust/internal/netid"
)

// handshakeTimeout bounds how long a freshly accepted connection may take
// to announce its holder name. Without it, a client that connects and
// goes silent would block the accept loop forever while the legitimate
// holders wait.
const handshakeTimeout = 10 * time.Second

// maxAcceptRetries bounds consecutive Accept failures before the server
// gives up; transient errors (aborted connections, momentary descriptor
// exhaustion) are retried after a short backoff instead of killing a
// server other holders are already connected to.
const maxAcceptRetries = 10

const acceptBackoff = 100 * time.Millisecond

// Exit codes distinguish the session failure classes so supervisors can
// react without parsing messages: 1 protocol/transport error, 2 usage,
// 3 watchdog timeout, 4 session abort (peer failure or local signal).
const (
	exitProtocol = 1
	exitUsage    = 2
	exitTimeout  = 3
	exitAbort    = 4
)

func main() {
	if err := run(); err != nil {
		os.Exit(reportFailure(err))
	}
}

// reportFailure emits the one-line structured failure record and maps the
// error class to the exit code.
func reportFailure(err error) int {
	class, code := "protocol", exitProtocol
	switch {
	case errors.Is(err, ppclust.ErrSessionTimeout):
		class, code = "timeout", exitTimeout
	case errors.Is(err, ppclust.ErrAborted):
		class, code = "abort", exitAbort
	}
	log.Printf("event=session-failed class=%s err=%q", class, err)
	return code
}

func run() error {
	listen := flag.String("listen", ":9000", "address to listen on")
	holdersFlag := flag.String("holders", "", "comma-separated data holder names (required)")
	schemaFlag := flag.String("schema", "", "schema spec, e.g. age:numeric,seq:alphanumeric:dna (required)")
	perPair := flag.Bool("perpair", false, "use per-pair masking (frequency-attack countermeasure)")
	variant := flag.String("variant", "float64", "numeric arithmetic: float64, int64 or modp")
	sessionTimeout := flag.Duration("session-timeout", 0, "bound on the whole session (0 = unbounded)")
	phaseTimeout := flag.Duration("phase-timeout", 2*time.Minute, "watchdog bound on session inactivity (0 = disabled)")
	flag.Parse()

	holders := splitNonEmpty(*holdersFlag)
	if len(holders) < 2 || *schemaFlag == "" {
		flag.Usage()
		os.Exit(exitUsage)
	}
	sort.Strings(holders)
	schema, err := ppclust.ParseSchema(*schemaFlag)
	if err != nil {
		return err
	}
	opts, err := buildOptions(*perPair, *variant)
	if err != nil {
		return err
	}
	opts.SessionTimeout = *sessionTimeout
	opts.PhaseTimeout = *phaseTimeout

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	defer ln.Close()
	log.Printf("third party listening on %s for holders %v", ln.Addr(), holders)

	conns := make(map[string]net.Conn, len(holders))
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	retries := 0
	for len(conns) < len(holders) {
		conn, err := ln.Accept()
		if err != nil {
			retries++
			if retries > maxAcceptRetries {
				return fmt.Errorf("accept failed %d times in a row, giving up: %w", retries, err)
			}
			log.Printf("accept (retry %d/%d): %v", retries, maxAcceptRetries, err)
			time.Sleep(acceptBackoff)
			continue
		}
		retries = 0
		name, err := netid.AcceptWithin(conn, handshakeTimeout)
		if err != nil {
			log.Printf("rejecting connection from %s: %v", conn.RemoteAddr(), err)
			conn.Close()
			continue
		}
		if !contains(holders, name) || conns[name] != nil {
			log.Printf("rejecting unexpected holder %q", name)
			conn.Close()
			continue
		}
		log.Printf("holder %s connected from %s", name, conn.RemoteAddr())
		conns[name] = conn
	}

	sess, err := ppclust.NewThirdPartySession(holders, schema, opts, conns)
	if err != nil {
		return err
	}
	// A termination signal aborts the session cleanly: holders receive an
	// abort frame naming the cause instead of observing a dead socket.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	report, err := sess.RunContext(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("session complete: %d objects, %d attribute matrices\n",
		len(report.ObjectIDs), len(report.AttributeMatrices))
	for holder, res := range report.Results {
		fmt.Printf("\npublished to %s (linkage=%v, k=%d):\n%s", holder, res.Linkage, res.K, res.Format())
	}
	return nil
}

func splitNonEmpty(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func contains(list []string, v string) bool {
	for _, x := range list {
		if x == v {
			return true
		}
	}
	return false
}

func buildOptions(perPair bool, variant string) (ppclust.Options, error) {
	var opts ppclust.Options
	if perPair {
		opts.Masking = ppclust.PerPairMasking
	}
	switch variant {
	case "float64":
		opts.Variant = ppclust.Float64Arithmetic
	case "int64":
		opts.Variant = ppclust.Int64Arithmetic
	case "modp":
		opts.Variant = ppclust.ModPArithmetic
	default:
		return opts, fmt.Errorf("unknown variant %q", variant)
	}
	return opts, nil
}
