// ppc-tp runs the third party of the privacy-preserving clustering protocol
// as a long-lived multi-tenant TCP server: holders announcing the same
// session ID are matched into one session, many sessions run concurrently
// under admission control and resource budgets, and a termination signal
// drains gracefully. The -once flag restores the historical single-session
// behaviour: serve exactly one session, print its report, exit. The
// -shards flag splits each session's third party into K row-range shards
// behind a merge coordinator — holders learn the shard count from the
// routing admission and dial one extra connection per shard; reports are
// bit-identical to the single-TP path at every K. With -shard-addrs, the
// shard pipelines run in external ppc-shard worker processes at the given
// addresses instead of in-process goroutines; holders connect exactly the
// same way, and a restarted worker heals its degraded sessions inside
// -reconnect-window. With -reconnect-window,
// a session whose holder lane is severed mid-run parks degraded for that
// grace period and accepts the holder's version-3 resume redial instead of
// aborting; the sessions_degraded gauge and reconnects_accepted/_refused
// counters on -debug-addr track the mechanism.
//
// Usage:
//
//	ppc-tp -listen :9000 -holders A,B,C -max-sessions 4 \
//	    -schema "age:numeric,diag:categorical,seq:alphanumeric:dna"
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"ppclust"
)

// Exit codes distinguish the failure classes so supervisors can react
// without parsing messages: 1 protocol/transport error, 2 usage, 3
// watchdog timeout, 4 session abort (peer failure, forced drain or local
// signal).
const (
	exitProtocol = 1
	exitUsage    = 2
	exitTimeout  = 3
	exitAbort    = 4
)

func main() {
	if err := run(); err != nil {
		os.Exit(reportFailure(err))
	}
}

// reportFailure emits the one-line structured failure record and maps the
// error class to the exit code.
func reportFailure(err error) int {
	class, code := "protocol", exitProtocol
	switch {
	case errors.Is(err, ppclust.ErrSessionTimeout):
		class, code = "timeout", exitTimeout
	case errors.Is(err, ppclust.ErrAborted):
		class, code = "abort", exitAbort
	}
	log.Printf("event=server-failed class=%s err=%q", class, err)
	return code
}

// completion is one finished tenant session, as observed by -once and the
// report printer.
type completion struct {
	session string
	report  *ppclust.TPReport
	err     error
}

func run() error {
	listen := flag.String("listen", ":9000", "address to listen on")
	holdersFlag := flag.String("holders", "", "comma-separated data holder names (required)")
	schemaFlag := flag.String("schema", "", "schema spec, e.g. age:numeric,seq:alphanumeric:dna (required)")
	perPair := flag.Bool("perpair", false, "use per-pair masking (frequency-attack countermeasure)")
	variant := flag.String("variant", "float64", "numeric arithmetic: float64, int64 or modp")
	shards := flag.Int("shards", 1, "row-range TP shards per session (1 = single third party; results are bit-identical at every setting)")
	shardAddrs := flag.String("shard-addrs", "", "comma-separated ppc-shard worker addresses, one per shard (empty = run shards in-process; requires -shards > 1)")
	sessionTimeout := flag.Duration("session-timeout", 0, "bound on each tenant session (0 = unbounded)")
	phaseTimeout := flag.Duration("phase-timeout", 2*time.Minute, "watchdog bound on per-session inactivity (0 = disabled)")
	reconnectWindow := flag.Duration("reconnect-window", 0, "grace period a session with a severed holder lane waits degraded for a version-3 resume redial (0 = severs abort immediately; must match the holders')")
	maxSessions := flag.Int("max-sessions", 4, "concurrently admitted tenant sessions")
	queueDepth := flag.Int("queue-depth", 0, "sessions that may queue for a slot (0 = refuse when saturated)")
	budgetBytes := flag.Int64("budget-bytes", 0, "global memory budget across sessions (0 = unbounded; requires -max-objects)")
	maxObjects := flag.Int("max-objects", 0, "per-session object cap, enforced at census (0 = uncapped)")
	gatherTimeout := flag.Duration("gather-timeout", 2*time.Minute, "bound on an admitted session gathering its holders (0 = unbounded)")
	drainTimeout := flag.Duration("drain-timeout", time.Minute, "graceful-drain bound after a termination signal (0 = wait forever)")
	debugAddr := flag.String("debug-addr", "", "expvar endpoint address, e.g. localhost:9090 (empty = disabled)")
	once := flag.Bool("once", false, "serve exactly one session, print its report, then exit")
	printReports := flag.Bool("print-reports", false, "print every completed session's published results (implied by -once)")
	flag.Parse()

	holders := splitNonEmpty(*holdersFlag)
	if len(holders) < 2 || *schemaFlag == "" {
		flag.Usage()
		os.Exit(exitUsage)
	}
	if *shards < 1 || *shards > ppclust.MaxTPShards {
		fmt.Fprintf(flag.CommandLine.Output(), "ppc-tp: -shards %d outside [1, %d]\n", *shards, ppclust.MaxTPShards)
		flag.Usage()
		os.Exit(exitUsage)
	}
	workerAddrs := splitNonEmpty(*shardAddrs)
	if len(workerAddrs) > 0 && len(workerAddrs) != *shards {
		fmt.Fprintf(flag.CommandLine.Output(), "ppc-tp: %d -shard-addrs entries for -shards %d (need exactly one worker per shard)\n",
			len(workerAddrs), *shards)
		flag.Usage()
		os.Exit(exitUsage)
	}
	sort.Strings(holders)
	schema, err := ppclust.ParseSchema(*schemaFlag)
	if err != nil {
		return err
	}
	opts, err := buildOptions(*perPair, *variant)
	if err != nil {
		return err
	}
	opts.SessionTimeout = *sessionTimeout
	opts.PhaseTimeout = *phaseTimeout
	opts.TPShards = *shards
	opts.ReconnectWindow = *reconnectWindow

	if *once {
		*maxSessions = 1
		*printReports = true
	}
	completions := make(chan completion, 16)
	srv, err := ppclust.NewTPServer(holders, schema, opts, ppclust.TPServerOptions{
		ShardAddrs:        workerAddrs,
		MaxSessions:       *maxSessions,
		QueueDepth:        *queueDepth,
		GlobalBudgetBytes: *budgetBytes,
		MaxSessionObjects: *maxObjects,
		GatherTimeout:     *gatherTimeout,
		Logf:              log.Printf,
		OnComplete: func(session string, report *ppclust.TPReport, err error) {
			select {
			case completions <- completion{session: session, report: report, err: err}:
			default: // nobody is consuming fast enough; never block a session
			}
		},
	})
	if err != nil {
		return err
	}

	if *debugAddr != "" {
		expvar.Publish("ppc_server", expvar.Func(func() any { return srv.Metrics().Snapshot() }))
		go func() {
			log.Printf("event=debug-endpoint addr=%s path=/debug/vars", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				log.Printf("event=debug-endpoint-failed err=%q", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	defer ln.Close()
	log.Printf("third party listening on %s for holders %v (max-sessions=%d queue=%d shards=%d)",
		ln.Addr(), holders, *maxSessions, *queueDepth, *shards)

	served := make(chan error, 1)
	go func() { served <- srv.Serve(ln, ppclust.TPServeConfig{}) }()

	// First termination signal: stop accepting and drain gracefully.
	// A second signal during the drain aborts the stragglers immediately.
	signals := make(chan os.Signal, 2)
	signal.Notify(signals, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(signals)

	var onceResult error
	drain := false
	for !drain {
		select {
		case sig := <-signals:
			log.Printf("event=drain-signal signal=%v", sig)
			drain = true
		case err := <-served:
			// The accept loop died on its own (listener failure).
			if err != nil {
				srv.Close()
				return err
			}
			drain = true
		case c := <-completions:
			if c.err == nil && *printReports {
				printReport(c)
			}
			if *once {
				onceResult = c.err
				drain = true
			}
		}
	}

	ln.Close()
	ctx := context.Background()
	if *drainTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *drainTimeout)
		defer cancel()
	}
	go func() {
		if _, ok := <-signals; ok {
			log.Printf("event=drain-aborted reason=second-signal")
			srv.Close()
		}
	}()
	if err := srv.Drain(ctx); err != nil {
		return fmt.Errorf("%w: %w", ppclust.ErrAborted, err)
	}
	log.Printf("event=server-stopped sessions-completed=%d", srv.Metrics().Completed())
	return onceResult
}

func printReport(c completion) {
	fmt.Printf("session %q complete: %d objects, %d attribute matrices\n",
		c.session, len(c.report.ObjectIDs), len(c.report.AttributeMatrices))
	for holder, res := range c.report.Results {
		fmt.Printf("\npublished to %s (linkage=%v, k=%d):\n%s", holder, res.Linkage, res.K, res.Format())
	}
}

func splitNonEmpty(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func buildOptions(perPair bool, variant string) (ppclust.Options, error) {
	var opts ppclust.Options
	if perPair {
		opts.Masking = ppclust.PerPairMasking
	}
	switch variant {
	case "float64":
		opts.Variant = ppclust.Float64Arithmetic
	case "int64":
		opts.Variant = ppclust.Int64Arithmetic
	case "modp":
		opts.Variant = ppclust.ModPArithmetic
	default:
		return opts, fmt.Errorf("unknown variant %q", variant)
	}
	return opts, nil
}
