// ppc-demo runs a complete in-process demonstration of the protocol on a
// generated workload: k sites, mixed attributes, full multi-party session,
// published clusterings, accuracy against the centralized baseline and
// ground truth, and per-link traffic.
//
// Usage:
//
//	ppc-demo -sites 3 -families 4 -per 8 -linkage average
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"ppclust"
)

func main() {
	sites := flag.Int("sites", 3, "number of data holder sites")
	families := flag.Int("families", 4, "number of planted clusters")
	per := flag.Int("per", 8, "objects per cluster")
	length := flag.Int("length", 40, "DNA sequence length")
	linkageFlag := flag.String("linkage", "average", "hierarchical linkage")
	seed := flag.Uint64("seed", 2006, "workload seed")
	perPair := flag.Bool("perpair", false, "use per-pair masking")
	flag.Parse()

	link, err := ppclust.ParseLinkage(*linkageFlag)
	if err != nil {
		log.Fatal(err)
	}

	data, err := ppclust.GenDNAFamilies(ppclust.DNASpec{
		Families: *families, PerFamily: *per, Length: *length,
		SubRate: 0.05, IndelRate: 0.02,
	}, *seed)
	if err != nil {
		log.Fatal(err)
	}
	parts, truth, err := ppclust.SplitRandom(data, *sites, *seed+1)
	if err != nil {
		log.Fatal(err)
	}
	schema := data.Table.Schema()
	fmt.Printf("workload: %d DNA families x %d strains over %d sites\n",
		*families, *per, *sites)

	opts := ppclust.Options{}
	if *perPair {
		opts.Masking = ppclust.PerPairMasking
	}
	reqs := map[string]ppclust.ClusterRequest{"A": {Linkage: link, K: *families}}
	out, err := ppclust.Cluster(schema, parts, reqs, opts)
	if err != nil {
		log.Fatal(err)
	}

	res := out.Results["A"]
	fmt.Printf("\npublished clustering (linkage=%v, k=%d):\n%s", res.Linkage, res.K, res.Format())

	labels, err := ppclust.ResultLabels(res, out.Report.ObjectIDs)
	if err != nil {
		log.Fatal(err)
	}
	ari, _ := ppclust.AdjustedRandIndex(truth, labels)
	nmi, _ := ppclust.NMI(truth, labels)
	fmt.Printf("accuracy vs ground truth: ARI=%.3f NMI=%.3f\n", ari, nmi)

	base, err := ppclust.CentralizedBaseline(schema, parts)
	if err != nil {
		log.Fatal(err)
	}
	worst := 0.0
	for i := range base {
		d, err := out.Report.AttributeMatrices[i].MaxDifference(base[i])
		if err != nil {
			log.Fatal(err)
		}
		if d > worst {
			worst = d
		}
	}
	fmt.Printf("max deviation from centralized dissimilarity matrix: %.2g\n", worst)

	fmt.Println("\ntraffic per directed link (ciphertext bytes):")
	var links []string
	for l := range out.Traffic {
		links = append(links, l)
	}
	sort.Strings(links)
	for _, l := range links {
		bytes, frames := out.Traffic[l].Sent()
		if bytes > 0 {
			fmt.Printf("  %-8s %8d bytes  %3d frames\n", l, bytes, frames)
		}
	}
}
