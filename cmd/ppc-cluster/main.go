// ppc-cluster is the non-private baseline tool: it loads a centralized CSV
// dataset, builds the per-attribute dissimilarity matrices directly from
// plaintext, clusters, and reports — the single-trusted-site computation
// the privacy-preserving protocol replaces. Useful for verifying protocol
// outputs and for exploring linkage/k choices before a session.
//
// Usage:
//
//	ppc-cluster -data all.csv -schema "age:numeric,seq:alphanumeric:dna" \
//	    -linkage average -k 3 [-newick] [-truth all.truth]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"

	"ppclust"
)

func main() {
	dataPath := flag.String("data", "", "CSV dataset (required)")
	schemaFlag := flag.String("schema", "", "schema spec (required)")
	linkageFlag := flag.String("linkage", "average", "hierarchical linkage")
	k := flag.Int("k", 2, "number of clusters")
	newick := flag.Bool("newick", false, "also print the dendrogram in Newick format")
	tree := flag.Bool("tree", false, "also print an ASCII dendrogram")
	truthPath := flag.String("truth", "", "optional ground-truth label file (one label per row)")
	flag.Parse()

	if *dataPath == "" || *schemaFlag == "" {
		flag.Usage()
		os.Exit(2)
	}
	schema, err := ppclust.ParseSchema(*schemaFlag)
	if err != nil {
		log.Fatal(err)
	}
	link, err := ppclust.ParseLinkage(*linkageFlag)
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(*dataPath)
	if err != nil {
		log.Fatal(err)
	}
	table, err := ppclust.ReadCSV(schema, f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	if table.Len() < 1 {
		log.Fatal("empty dataset")
	}
	if *k < 1 || *k > table.Len() {
		log.Fatalf("k=%d out of range for %d objects", *k, table.Len())
	}

	parts := []ppclust.Partition{{Site: "X", Table: table}}
	matrices, err := ppclust.CentralizedBaseline(schema, parts)
	if err != nil {
		log.Fatal(err)
	}
	merged, err := ppclust.MergeMatrices(matrices, schema.Weights())
	if err != nil {
		log.Fatal(err)
	}
	dg, err := ppclust.HCluster(merged, link)
	if err != nil {
		log.Fatal(err)
	}
	clusters, err := dg.CutK(*k)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d objects, %d attributes, linkage=%v, k=%d\n", table.Len(), len(schema.Attrs), link, *k)
	for c, members := range clusters {
		fmt.Printf("Cluster%d\t", c+1)
		for i, m := range members {
			if i > 0 {
				fmt.Print(", ")
			}
			fmt.Printf("%d", m+1)
		}
		fmt.Println()
	}
	quality, err := ppclust.Quality(merged, clusters)
	if err != nil {
		log.Fatal(err)
	}
	for c, q := range quality {
		fmt.Printf("Cluster%d quality: size=%d avgSqDist=%.4f diameter=%.4f\n",
			c+1, q.Size, q.AvgSquaredDistance, q.Diameter)
	}
	if *k >= 2 {
		labels, err := dg.Labels(*k)
		if err != nil {
			log.Fatal(err)
		}
		if sil, err := ppclust.Silhouette(merged, labels); err == nil {
			fmt.Printf("silhouette: %.4f\n", sil)
		}
		if *truthPath != "" {
			truth, err := readTruth(*truthPath, table.Len())
			if err != nil {
				log.Fatal(err)
			}
			ari, err := ppclust.AdjustedRandIndex(truth, labels)
			if err != nil {
				log.Fatal(err)
			}
			nmi, _ := ppclust.NMI(truth, labels)
			fmt.Printf("vs ground truth: ARI=%.4f NMI=%.4f\n", ari, nmi)
		}
	}
	if *newick {
		nw, err := dg.Newick(nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(nw)
	}
	if *tree {
		art, err := dg.Render(nil, 60)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(art)
	}
}

func readTruth(path string, want int) ([]int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []int
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		v, err := strconv.Atoi(line)
		if err != nil {
			return nil, fmt.Errorf("bad truth label %q: %w", line, err)
		}
		out = append(out, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) != want {
		return nil, fmt.Errorf("%d truth labels for %d rows", len(out), want)
	}
	return out, nil
}
