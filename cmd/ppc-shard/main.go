// ppc-shard runs one external TP shard worker: a long-lived TCP server
// that accepts version-4 shard-registration hellos from session
// coordinators (ppc-tp started with -shard-addrs) and executes one
// shard's stage pipeline per registered session. Workers hold no state
// between registrations — a coordinator heals a crashed worker by
// redialing its address and replaying the shard stream, and the restarted
// process recomputes the slice — so deployment is one ppc-shard per
// -shard-addrs entry, restarted freely under any supervisor.
//
// The first line on stdout is "listening on ADDR" with the bound address
// (so -listen 127.0.0.1:0 is usable under a harness that needs the
// ephemeral port). A termination signal drains: every registered run is
// aborted with a typed reason and the process exits.
//
// Usage:
//
//	ppc-shard -listen :9100 -schema "age:numeric,diag:categorical"
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strconv"
	"syscall"

	"ppclust"
)

// Exit codes follow the family convention: 1 serve error, 2 usage. 3 is
// reserved for the deterministic crash hook below.
const (
	exitServe = 1
	exitUsage = 2
	exitCrash = 3
)

func main() {
	if err := run(); err != nil {
		log.Printf("event=shard-worker-failed err=%q", err)
		os.Exit(exitServe)
	}
}

func run() error {
	listen := flag.String("listen", ":9100", "address to listen on")
	schemaFlag := flag.String("schema", "", "schema spec, e.g. age:numeric,seq:alphanumeric:dna (required; must match the coordinator's)")
	flag.Parse()

	if *schemaFlag == "" {
		flag.Usage()
		os.Exit(exitUsage)
	}
	schema, err := ppclust.ParseSchema(*schemaFlag)
	if err != nil {
		return err
	}
	worker, err := ppclust.NewTPShardWorker(ppclust.TPShardWorkerConfig{
		Schema:  schema,
		Logf:    log.Printf,
		OnFrame: crashHook(),
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	defer ln.Close()
	// The stdout address line is the spawn handshake the multi-process
	// harness (and any supervisor using an ephemeral -listen port) reads.
	fmt.Printf("listening on %s\n", ln.Addr())
	log.Printf("event=shard-worker-listening addr=%s", ln.Addr())

	signals := make(chan os.Signal, 1)
	signal.Notify(signals, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(signals)
	go func() {
		sig := <-signals
		log.Printf("event=shard-worker-drain signal=%v", sig)
		worker.Close()
		ln.Close()
	}()

	return worker.Serve(ln)
}

// crashHook arms the deterministic fault injection the multi-process
// chaos harness scripts kills with: when PPC_SHARD_CRASH_AFTER_FRAMES=N
// is set, the process dies hard (exit 3, no drain, no abort frames) the
// moment any run has relayed N frames — indistinguishable on the wire
// from a real worker crash at that protocol point. Unset means no hook.
func crashHook() func(session string, shard, frames int) {
	spec := os.Getenv("PPC_SHARD_CRASH_AFTER_FRAMES")
	if spec == "" {
		return nil
	}
	n, err := strconv.Atoi(spec)
	if err != nil || n < 1 {
		log.Printf("event=crash-hook-ignored spec=%q", spec)
		return nil
	}
	return func(session string, shard, frames int) {
		if frames >= n {
			log.Printf("event=crash-hook-fired session=%q shard=%d frames=%d", session, shard, frames)
			os.Exit(exitCrash)
		}
	}
}
