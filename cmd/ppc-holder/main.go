// ppc-holder runs one data holder of the privacy-preserving clustering
// protocol over TCP. The holder loads its private partition from CSV,
// connects to the third party and its peer holders, runs the session and
// prints the clustering result it receives.
//
// Connection topology: every holder dials the third party; for each holder
// pair the lexicographically larger name dials the smaller, which must be
// listening (-listen). Example for holders A, B, C:
//
//	ppc-holder -name A -data a.csv -tp tp:9000 -listen :9001 \
//	    -holders A,B,C -schema "age:numeric,seq:alphanumeric:dna"
//	ppc-holder -name B -data b.csv -tp tp:9000 -listen :9002 \
//	    -holders A,B,C -peers A=hostA:9001 -schema ...
//	ppc-holder -name C -data c.csv -tp tp:9000 \
//	    -holders A,B,C -peers A=hostA:9001,B=hostB:9002 -schema ...
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"sort"
	"strings"

	"ppclust"
	"ppclust/internal/netid"
)

func main() {
	name := flag.String("name", "", "this holder's name (required)")
	dataPath := flag.String("data", "", "CSV file with this holder's partition (required)")
	tpAddr := flag.String("tp", "", "third party address (required)")
	listen := flag.String("listen", "", "address to accept higher-named peers on")
	peersFlag := flag.String("peers", "", "lower-named peer addresses, name=host:port pairs")
	holdersFlag := flag.String("holders", "", "comma-separated names of all holders (required)")
	schemaFlag := flag.String("schema", "", "schema spec (required)")
	linkageFlag := flag.String("linkage", "average", "linkage for the agglomerative method")
	methodFlag := flag.String("method", "agglomerative", "clustering method: agglomerative, diana or pam")
	k := flag.Int("k", 2, "number of clusters to request")
	perPair := flag.Bool("perpair", false, "use per-pair masking")
	variant := flag.String("variant", "float64", "numeric arithmetic: float64, int64 or modp")
	flag.Parse()

	holders := splitNonEmpty(*holdersFlag)
	if *name == "" || *dataPath == "" || *tpAddr == "" || len(holders) < 2 || *schemaFlag == "" {
		flag.Usage()
		os.Exit(2)
	}
	sort.Strings(holders)

	schema, err := ppclust.ParseSchema(*schemaFlag)
	if err != nil {
		log.Fatal(err)
	}
	link, err := ppclust.ParseLinkage(*linkageFlag)
	if err != nil {
		log.Fatal(err)
	}
	var method ppclust.Method
	switch *methodFlag {
	case "agglomerative":
		method = ppclust.MethodAgglomerative
	case "diana":
		method = ppclust.MethodDiana
	case "pam":
		method = ppclust.MethodPAM
	default:
		log.Fatalf("unknown method %q", *methodFlag)
	}
	opts, err := buildOptions(*perPair, *variant)
	if err != nil {
		log.Fatal(err)
	}

	f, err := os.Open(*dataPath)
	if err != nil {
		log.Fatal(err)
	}
	table, err := ppclust.ReadCSV(schema, f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("holder %s loaded %d objects", *name, table.Len())

	peers := map[string]string{}
	for _, p := range splitNonEmpty(*peersFlag) {
		kv := strings.SplitN(p, "=", 2)
		if len(kv) != 2 {
			log.Fatalf("bad -peers entry %q", p)
		}
		peers[kv[0]] = kv[1]
	}

	conns := map[string]net.Conn{}
	// Dial the third party, announcing our name.
	tpConn, err := net.Dial("tcp", *tpAddr)
	if err != nil {
		log.Fatalf("dialing third party: %v", err)
	}
	if err := netid.Announce(tpConn, *name); err != nil {
		log.Fatal(err)
	}
	conns[ppclust.ThirdPartyName] = tpConn

	// Dial every lower-named peer.
	var expectHigher []string
	for _, h := range holders {
		switch {
		case h == *name:
		case h < *name:
			addr, ok := peers[h]
			if !ok {
				log.Fatalf("no -peers address for lower-named holder %s", h)
			}
			c, err := net.Dial("tcp", addr)
			if err != nil {
				log.Fatalf("dialing peer %s: %v", h, err)
			}
			if err := netid.Announce(c, *name); err != nil {
				log.Fatal(err)
			}
			conns[h] = c
		default:
			expectHigher = append(expectHigher, h)
		}
	}

	// Accept every higher-named peer.
	if len(expectHigher) > 0 {
		if *listen == "" {
			log.Fatalf("holders %v will dial us; -listen is required", expectHigher)
		}
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			log.Fatal(err)
		}
		defer ln.Close()
		log.Printf("waiting for peers %v on %s", expectHigher, ln.Addr())
		for pending := len(expectHigher); pending > 0; {
			c, err := ln.Accept()
			if err != nil {
				log.Fatal(err)
			}
			peer, err := netid.Accept(c)
			if err != nil || !contains(expectHigher, peer) || conns[peer] != nil {
				log.Printf("rejecting connection (%v, peer %q)", err, peer)
				c.Close()
				continue
			}
			conns[peer] = c
			pending--
		}
	}

	sess, err := ppclust.NewHolderSession(*name, table, holders, schema, opts,
		ppclust.ClusterRequest{Method: method, Linkage: link, K: *k}, conns)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sess.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clustering received by %s (linkage=%v, k=%d):\n%s", *name, res.Linkage, res.K, res.Format())
	for i, q := range res.Quality {
		fmt.Printf("Cluster%d quality: size=%d avgSqDist=%.4f diameter=%.4f\n",
			i+1, q.Size, q.AvgSquaredDistance, q.Diameter)
	}
}

func splitNonEmpty(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func contains(list []string, v string) bool {
	for _, x := range list {
		if x == v {
			return true
		}
	}
	return false
}

func buildOptions(perPair bool, variant string) (ppclust.Options, error) {
	var opts ppclust.Options
	if perPair {
		opts.Masking = ppclust.PerPairMasking
	}
	switch variant {
	case "float64":
		opts.Variant = ppclust.Float64Arithmetic
	case "int64":
		opts.Variant = ppclust.Int64Arithmetic
	case "modp":
		opts.Variant = ppclust.ModPArithmetic
	default:
		return opts, fmt.Errorf("unknown variant %q", variant)
	}
	return opts, nil
}
