// ppc-holder runs one data holder of the privacy-preserving clustering
// protocol over TCP. The holder loads its private partition from CSV,
// connects to the third party and its peer holders, runs the session and
// prints the clustering result it receives.
//
// Connection topology: every holder dials the third party; for each holder
// pair the lexicographically larger name dials the smaller, which must be
// listening (-listen). Example for holders A, B, C:
//
//	ppc-holder -name A -data a.csv -tp tp:9000 -listen :9001 \
//	    -holders A,B,C -schema "age:numeric,seq:alphanumeric:dna"
//	ppc-holder -name B -data b.csv -tp tp:9000 -listen :9002 \
//	    -holders A,B,C -peers A=hostA:9001 -schema ...
//	ppc-holder -name C -data c.csv -tp tp:9000 \
//	    -holders A,B,C -peers A=hostA:9001,B=hostB:9002 -schema ...
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"ppclust"
	"ppclust/internal/netid"
)

// handshakeTimeout bounds the netid preamble in both directions: how long
// we wait for a dialed peer to take our name announcement, and how long a
// connection accepted on -listen may take to announce its own. A silent
// peer fails the handshake instead of hanging the session setup.
const handshakeTimeout = 10 * time.Second

// maxAcceptRetries and acceptBackoff mirror ppc-tp's accept loop: a
// transient Accept error must not kill a holder that peers and the third
// party have already handshaken with.
const maxAcceptRetries = 10

const acceptBackoff = 100 * time.Millisecond

// Exit codes distinguish the session failure classes so supervisors can
// react without parsing messages: 1 protocol/transport error, 2 usage,
// 3 watchdog timeout, 4 session abort (peer failure or local signal).
const (
	exitProtocol = 1
	exitUsage    = 2
	exitTimeout  = 3
	exitAbort    = 4
)

func main() {
	if err := run(); err != nil {
		os.Exit(reportFailure(err))
	}
}

// reportFailure emits the one-line structured failure record and maps the
// error class to the exit code.
func reportFailure(err error) int {
	class, code := "protocol", exitProtocol
	switch {
	case errors.Is(err, ppclust.ErrSessionTimeout):
		class, code = "timeout", exitTimeout
	case errors.Is(err, ppclust.ErrAborted):
		class, code = "abort", exitAbort
	}
	log.Printf("event=session-failed class=%s err=%q", class, err)
	return code
}

func run() error {
	name := flag.String("name", "", "this holder's name (required)")
	dataPath := flag.String("data", "", "CSV file with this holder's partition (required)")
	tpAddr := flag.String("tp", "", "third party address (required)")
	listen := flag.String("listen", "", "address to accept higher-named peers on")
	peersFlag := flag.String("peers", "", "lower-named peer addresses, name=host:port pairs")
	holdersFlag := flag.String("holders", "", "comma-separated names of all holders (required)")
	schemaFlag := flag.String("schema", "", "schema spec (required)")
	linkageFlag := flag.String("linkage", "average", "linkage for the agglomerative method")
	methodFlag := flag.String("method", "agglomerative", "clustering method: agglomerative, diana or pam")
	k := flag.Int("k", 2, "number of clusters to request")
	perPair := flag.Bool("perpair", false, "use per-pair masking")
	variant := flag.String("variant", "float64", "numeric arithmetic: float64, int64 or modp")
	sessionTimeout := flag.Duration("session-timeout", 0, "bound on the whole session (0 = unbounded)")
	phaseTimeout := flag.Duration("phase-timeout", 2*time.Minute, "watchdog bound on session inactivity (0 = disabled)")
	flag.Parse()

	holders := splitNonEmpty(*holdersFlag)
	if *name == "" || *dataPath == "" || *tpAddr == "" || len(holders) < 2 || *schemaFlag == "" {
		flag.Usage()
		os.Exit(exitUsage)
	}
	sort.Strings(holders)

	schema, err := ppclust.ParseSchema(*schemaFlag)
	if err != nil {
		return err
	}
	link, err := ppclust.ParseLinkage(*linkageFlag)
	if err != nil {
		return err
	}
	var method ppclust.Method
	switch *methodFlag {
	case "agglomerative":
		method = ppclust.MethodAgglomerative
	case "diana":
		method = ppclust.MethodDiana
	case "pam":
		method = ppclust.MethodPAM
	default:
		return fmt.Errorf("unknown method %q", *methodFlag)
	}
	opts, err := buildOptions(*perPair, *variant)
	if err != nil {
		return err
	}
	opts.SessionTimeout = *sessionTimeout
	opts.PhaseTimeout = *phaseTimeout

	f, err := os.Open(*dataPath)
	if err != nil {
		return err
	}
	table, err := ppclust.ReadCSV(schema, f)
	f.Close()
	if err != nil {
		return err
	}
	log.Printf("holder %s loaded %d objects", *name, table.Len())

	peers := map[string]string{}
	for _, p := range splitNonEmpty(*peersFlag) {
		kv := strings.SplitN(p, "=", 2)
		if len(kv) != 2 {
			return fmt.Errorf("bad -peers entry %q", p)
		}
		peers[kv[0]] = kv[1]
	}

	// Every connection is closed on exit — success or failure — so peers
	// blocked on this holder observe a prompt ErrClosed instead of a
	// half-open session.
	conns := map[string]net.Conn{}
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()

	// Dial the third party, announcing our name.
	tpConn, err := dialAndAnnounce(*tpAddr, *name)
	if err != nil {
		return fmt.Errorf("dialing third party: %w", err)
	}
	conns[ppclust.ThirdPartyName] = tpConn

	// Dial every lower-named peer.
	var expectHigher []string
	for _, h := range holders {
		switch {
		case h == *name:
		case h < *name:
			addr, ok := peers[h]
			if !ok {
				return fmt.Errorf("no -peers address for lower-named holder %s", h)
			}
			c, err := dialAndAnnounce(addr, *name)
			if err != nil {
				return fmt.Errorf("dialing peer %s: %w", h, err)
			}
			conns[h] = c
		default:
			expectHigher = append(expectHigher, h)
		}
	}

	// Accept every higher-named peer.
	if len(expectHigher) > 0 {
		if *listen == "" {
			return fmt.Errorf("holders %v will dial us; -listen is required", expectHigher)
		}
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			return err
		}
		defer ln.Close()
		log.Printf("waiting for peers %v on %s", expectHigher, ln.Addr())
		retries := 0
		for pending := len(expectHigher); pending > 0; {
			c, err := ln.Accept()
			if err != nil {
				retries++
				if retries > maxAcceptRetries {
					return fmt.Errorf("accept failed %d times in a row, giving up: %w", retries, err)
				}
				log.Printf("accept (retry %d/%d): %v", retries, maxAcceptRetries, err)
				time.Sleep(acceptBackoff)
				continue
			}
			retries = 0
			peer, err := netid.AcceptWithin(c, handshakeTimeout)
			if err != nil || !contains(expectHigher, peer) || conns[peer] != nil {
				log.Printf("rejecting connection (%v, peer %q)", err, peer)
				c.Close()
				continue
			}
			conns[peer] = c
			pending--
		}
	}

	sess, err := ppclust.NewHolderSession(*name, table, holders, schema, opts,
		ppclust.ClusterRequest{Method: method, Linkage: link, K: *k}, conns)
	if err != nil {
		return err
	}
	// A termination signal aborts the session cleanly: the third party and
	// peer holders receive an abort frame naming the cause instead of
	// observing a dead socket.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	res, err := sess.RunContext(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("clustering received by %s (linkage=%v, k=%d):\n%s", *name, res.Linkage, res.K, res.Format())
	for i, q := range res.Quality {
		fmt.Printf("Cluster%d quality: size=%d avgSqDist=%.4f diameter=%.4f\n",
			i+1, q.Size, q.AvgSquaredDistance, q.Diameter)
	}
	return nil
}

// dialAndAnnounce connects to addr and writes the netid preamble under a
// deadline; a peer that accepts but never drains the socket cannot wedge
// session setup.
func dialAndAnnounce(addr, name string) (net.Conn, error) {
	c, err := net.DialTimeout("tcp", addr, handshakeTimeout)
	if err != nil {
		return nil, err
	}
	if err := netid.AnnounceWithin(c, name, handshakeTimeout); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

func splitNonEmpty(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func contains(list []string, v string) bool {
	for _, x := range list {
		if x == v {
			return true
		}
	}
	return false
}

func buildOptions(perPair bool, variant string) (ppclust.Options, error) {
	var opts ppclust.Options
	if perPair {
		opts.Masking = ppclust.PerPairMasking
	}
	switch variant {
	case "float64":
		opts.Variant = ppclust.Float64Arithmetic
	case "int64":
		opts.Variant = ppclust.Int64Arithmetic
	case "modp":
		opts.Variant = ppclust.ModPArithmetic
	default:
		return opts, fmt.Errorf("unknown variant %q", variant)
	}
	return opts, nil
}
