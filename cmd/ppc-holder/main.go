// ppc-holder runs one data holder of the privacy-preserving clustering
// protocol over TCP. The holder loads its private partition from CSV,
// connects to the third party and its peer holders, runs the session and
// prints the clustering result it receives.
//
// Connection topology: every holder dials the third party; for each holder
// pair the lexicographically larger name dials the smaller, which must be
// listening (-listen). Example for holders A, B, C:
//
//	ppc-holder -name A -data a.csv -tp tp:9000 -listen :9001 \
//	    -holders A,B,C -schema "age:numeric,seq:alphanumeric:dna"
//	ppc-holder -name B -data b.csv -tp tp:9000 -listen :9002 \
//	    -holders A,B,C -peers A=hostA:9001 -schema ...
//	ppc-holder -name C -data c.csv -tp tp:9000 \
//	    -holders A,B,C -peers A=hostA:9001,B=hostB:9002 -schema ...
//
// Against a multi-tenant third party, add -session to name the tenant
// session: the holder sends the versioned hello, waits for the typed
// admission response, and exits with code 5 when the server refuses
// (retrying first, with capped exponential backoff, when the refusal is
// retryable — e.g. the server is draining). The routing admission carries
// the server's TP shard count: when the third party is sharded (ppc-tp
// -shards K), the holder automatically dials one extra connection per
// shard lane — no holder-side flag. All dials retry transient failures
// under -connect-retries / -connect-backoff.
//
// With -reconnect-window (and -session), a severed third-party connection
// mid-session no longer kills the run: the holder redials the server under
// the same -connect-retries / -connect-backoff policy, performs the
// version-3 resume handshake, and the session continues bit-identically
// after a watermarked replay. The window must match the server's
// (ppc-tp -reconnect-window). An unrecoverable sever exits with code 6.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	mrand "math/rand"
	"net"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"ppclust"
	"ppclust/internal/netid"
)

// handshakeTimeout bounds the netid preamble in both directions: how long
// we wait for a dialed peer to take our name announcement, and how long a
// connection accepted on -listen may take to announce its own. A silent
// peer fails the handshake instead of hanging the session setup.
const handshakeTimeout = 10 * time.Second

// maxAcceptRetries and acceptBackoff mirror ppc-tp's accept loop: a
// transient Accept error must not kill a holder that peers and the third
// party have already handshaken with.
const maxAcceptRetries = 10

const acceptBackoff = 100 * time.Millisecond

// admissionTimeout bounds the wait for the multi-tenant server's admission
// response. The accept is deferred until the whole session has gathered,
// so this must outlast the server's gather window (default 2m), not just a
// round trip.
const admissionTimeout = 5 * time.Minute

// maxConnectBackoff caps the exponential connect backoff.
const maxConnectBackoff = 5 * time.Second

// Exit codes distinguish the session failure classes so supervisors can
// react without parsing messages: 1 protocol/transport error, 2 usage,
// 3 watchdog timeout, 4 session abort (peer failure or local signal),
// 5 admission refused by the server (typed ppc/reject frame),
// 6 disconnected mid-session beyond recovery (no reconnect window armed,
// or the server refused the resume terminally).
const (
	exitProtocol     = 1
	exitUsage        = 2
	exitTimeout      = 3
	exitAbort        = 4
	exitRefused      = 5
	exitDisconnected = 6
)

func main() {
	if err := run(); err != nil {
		os.Exit(reportFailure(err))
	}
}

// reportFailure emits the one-line structured failure record and maps the
// error class to the exit code.
func reportFailure(err error) int {
	class, code := "protocol", exitProtocol
	switch {
	// Disconnected is checked first: a terminal resume refusal wraps both
	// the sever class and the server's typed reject, and the sever is the
	// operative fact for a supervisor deciding whether to restart.
	case errors.Is(err, ppclust.ErrDisconnected):
		class, code = "disconnected", exitDisconnected
	case errors.Is(err, ppclust.ErrSessionRefused):
		class, code = "refused", exitRefused
	case errors.Is(err, ppclust.ErrSessionTimeout):
		class, code = "timeout", exitTimeout
	case errors.Is(err, ppclust.ErrAborted):
		class, code = "abort", exitAbort
	}
	log.Printf("event=session-failed class=%s err=%q", class, err)
	return code
}

func run() error {
	name := flag.String("name", "", "this holder's name (required)")
	dataPath := flag.String("data", "", "CSV file with this holder's partition (required)")
	tpAddr := flag.String("tp", "", "third party address (required)")
	listen := flag.String("listen", "", "address to accept higher-named peers on")
	peersFlag := flag.String("peers", "", "lower-named peer addresses, name=host:port pairs")
	holdersFlag := flag.String("holders", "", "comma-separated names of all holders (required)")
	schemaFlag := flag.String("schema", "", "schema spec (required)")
	linkageFlag := flag.String("linkage", "average", "linkage for the agglomerative method")
	methodFlag := flag.String("method", "agglomerative", "clustering method: agglomerative, diana or pam")
	k := flag.Int("k", 2, "number of clusters to request")
	perPair := flag.Bool("perpair", false, "use per-pair masking")
	variant := flag.String("variant", "float64", "numeric arithmetic: float64, int64 or modp")
	sessionTimeout := flag.Duration("session-timeout", 0, "bound on the whole session (0 = unbounded)")
	phaseTimeout := flag.Duration("phase-timeout", 2*time.Minute, "watchdog bound on session inactivity (0 = disabled)")
	session := flag.String("session", "", "session ID for a multi-tenant third party (empty = legacy single-session hello)")
	connectRetries := flag.Int("connect-retries", 5, "connect attempts per target before giving up")
	connectBackoff := flag.Duration("connect-backoff", 200*time.Millisecond, "initial connect backoff (doubles per attempt, capped, jittered)")
	reconnectWindow := flag.Duration("reconnect-window", 0, "grace period to redial the third party after a mid-session sever (0 = disabled; requires -session, must match the server's)")
	flag.Parse()

	holders := splitNonEmpty(*holdersFlag)
	if *name == "" || *dataPath == "" || *tpAddr == "" || len(holders) < 2 || *schemaFlag == "" {
		flag.Usage()
		os.Exit(exitUsage)
	}
	sort.Strings(holders)

	schema, err := ppclust.ParseSchema(*schemaFlag)
	if err != nil {
		return err
	}
	link, err := ppclust.ParseLinkage(*linkageFlag)
	if err != nil {
		return err
	}
	var method ppclust.Method
	switch *methodFlag {
	case "agglomerative":
		method = ppclust.MethodAgglomerative
	case "diana":
		method = ppclust.MethodDiana
	case "pam":
		method = ppclust.MethodPAM
	default:
		return fmt.Errorf("unknown method %q", *methodFlag)
	}
	opts, err := buildOptions(*perPair, *variant)
	if err != nil {
		return err
	}
	opts.SessionTimeout = *sessionTimeout
	opts.PhaseTimeout = *phaseTimeout
	opts.ReconnectWindow = *reconnectWindow
	if *reconnectWindow > 0 && *session == "" {
		return fmt.Errorf("-reconnect-window requires -session: only the multi-tenant server routes resume hellos")
	}

	f, err := os.Open(*dataPath)
	if err != nil {
		return err
	}
	table, err := ppclust.ReadCSV(schema, f)
	f.Close()
	if err != nil {
		return err
	}
	log.Printf("holder %s loaded %d objects", *name, table.Len())

	peers := map[string]string{}
	for _, p := range splitNonEmpty(*peersFlag) {
		kv := strings.SplitN(p, "=", 2)
		if len(kv) != 2 {
			return fmt.Errorf("bad -peers entry %q", p)
		}
		peers[kv[0]] = kv[1]
	}

	// Every connection is closed on exit — success or failure — so peers
	// blocked on this holder observe a prompt ErrClosed instead of a
	// half-open session.
	conns := map[string]net.Conn{}
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()

	d := &dialer{
		retries: *connectRetries,
		backoff: *connectBackoff,
		rnd:     mrand.New(mrand.NewSource(time.Now().UnixNano())),
	}

	// Dial the third party. With -session the versioned hello names the
	// tenant session and the routing admission is awaited — a typed
	// refusal (capacity, budget, version skew, …) surfaces here instead of
	// a hang or a dead socket mid-protocol, and the accept carries the
	// session's TP shard count. Retryable refusals (server draining)
	// re-dial under the same backoff as connect failures.
	tpShards := 1
	tpConn, err := d.dial("third party", *tpAddr, tpHandshake(*name, *session, &tpShards))
	if err != nil {
		return fmt.Errorf("dialing third party: %w", err)
	}
	conns[ppclust.ThirdPartyName] = tpConn

	// A sharded third party needs one extra connection per shard lane; the
	// server matches them into the session by (name, session, shard).
	if tpShards > 1 {
		log.Printf("third party shards the session %d ways; dialing shard lanes", tpShards)
		for s := 0; s < tpShards; s++ {
			shardConn, err := d.dial(fmt.Sprintf("third party shard %d", s), *tpAddr,
				shardHandshake(*name, *session, s))
			if err != nil {
				return fmt.Errorf("dialing third party shard %d: %w", s, err)
			}
			conns[ppclust.TPShardConduitName(s)] = shardConn
		}
	}
	opts.TPShards = tpShards

	// Dial every lower-named peer.
	var expectHigher []string
	for _, h := range holders {
		switch {
		case h == *name:
		case h < *name:
			addr, ok := peers[h]
			if !ok {
				return fmt.Errorf("no -peers address for lower-named holder %s", h)
			}
			c, err := d.dial("peer "+h, addr, func(c net.Conn) error {
				return netid.AnnounceWithin(c, *name, handshakeTimeout)
			})
			if err != nil {
				return fmt.Errorf("dialing peer %s: %w", h, err)
			}
			conns[h] = c
		default:
			expectHigher = append(expectHigher, h)
		}
	}

	// Accept every higher-named peer.
	if len(expectHigher) > 0 {
		if *listen == "" {
			return fmt.Errorf("holders %v will dial us; -listen is required", expectHigher)
		}
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			return err
		}
		defer ln.Close()
		log.Printf("waiting for peers %v on %s", expectHigher, ln.Addr())
		retries := 0
		for pending := len(expectHigher); pending > 0; {
			c, err := ln.Accept()
			if err != nil {
				retries++
				if retries > maxAcceptRetries {
					return fmt.Errorf("accept failed %d times in a row, giving up: %w", retries, err)
				}
				log.Printf("accept (retry %d/%d): %v", retries, maxAcceptRetries, err)
				time.Sleep(acceptBackoff)
				continue
			}
			retries = 0
			peer, err := netid.AcceptWithin(c, handshakeTimeout)
			if err != nil || !contains(expectHigher, peer) || conns[peer] != nil {
				log.Printf("rejecting connection (%v, peer %q)", err, peer)
				c.Close()
				continue
			}
			conns[peer] = c
			pending--
		}
	}

	req := ppclust.ClusterRequest{Method: method, Linkage: link, K: *k}
	var sess *ppclust.HolderSession
	if *reconnectWindow > 0 {
		// Resume redials share the connect policy: the same -connect-retries
		// attempt bound and the same capped, jittered exponential backoff
		// that governed the initial dials.
		sess, err = ppclust.NewResumableHolderSession(*name, table, holders, schema, opts, req, conns, *session,
			func(ctx context.Context) (net.Conn, error) {
				return d.dialRaw(ctx, "third party (resume)", *tpAddr)
			})
	} else {
		sess, err = ppclust.NewHolderSession(*name, table, holders, schema, opts, req, conns)
	}
	if err != nil {
		return err
	}
	// A termination signal aborts the session cleanly: the third party and
	// peer holders receive an abort frame naming the cause instead of
	// observing a dead socket.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	res, err := sess.RunContext(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("clustering received by %s (linkage=%v, k=%d):\n%s", *name, res.Linkage, res.K, res.Format())
	for i, q := range res.Quality {
		fmt.Printf("Cluster%d quality: size=%d avgSqDist=%.4f diameter=%.4f\n",
			i+1, q.Size, q.AvgSquaredDistance, q.Diameter)
	}
	return nil
}

// tpHandshake announces to the third party: the versioned session hello
// followed by the routing-admission wait when a session ID is set — the
// accept carries the session's TP shard count, written to *shards — and
// the legacy name-only preamble otherwise.
func tpHandshake(name, session string, shards *int) func(net.Conn) error {
	return func(c net.Conn) error {
		if session == "" {
			return netid.AnnounceWithin(c, name, handshakeTimeout)
		}
		if err := netid.AnnounceSessionShardWithin(c, name, session, -1, handshakeTimeout); err != nil {
			return err
		}
		k, err := netid.AwaitAdmissionRouting(c, admissionTimeout)
		if err != nil {
			return err
		}
		if shards != nil {
			*shards = k
		}
		return nil
	}
}

// shardHandshake announces one shard-lane connection: the versioned hello
// carrying the lane index, then the routing-admission wait.
func shardHandshake(name, session string, shard int) func(net.Conn) error {
	return func(c net.Conn) error {
		if err := netid.AnnounceSessionShardWithin(c, name, session, shard, handshakeTimeout); err != nil {
			return err
		}
		_, err := netid.AwaitAdmissionRouting(c, admissionTimeout)
		return err
	}
}

// dialer connects with capped exponential backoff and jitter, so a fleet
// of holders restarting together does not hammer a recovering server in
// lockstep.
type dialer struct {
	retries int
	backoff time.Duration
	mu      sync.Mutex // guards rnd: resume redials jitter off the main goroutine
	rnd     *mrand.Rand
}

// dial connects to addr and runs the handshake, retrying dial and
// handshake failures up to retries times. A typed admission refusal ends
// the attempts immediately unless the reject reason is retryable (server
// draining).
func (d *dialer) dial(what, addr string, handshake func(net.Conn) error) (net.Conn, error) {
	var last error
	for attempt := 0; ; attempt++ {
		c, err := net.DialTimeout("tcp", addr, handshakeTimeout)
		if err == nil {
			if err = handshake(c); err == nil {
				return c, nil
			}
			c.Close()
			var rej *netid.RejectedError
			if errors.As(err, &rej) && !rej.Retryable() {
				// Final by construction: the server named a constraint no
				// retry relieves (wrong version, unknown holder, full queue).
				return nil, err
			}
		}
		last = err
		if attempt+1 >= d.retries {
			return nil, fmt.Errorf("%s: giving up after %d attempts: %w", what, attempt+1, last)
		}
		delay := d.delay(attempt)
		log.Printf("event=connect-retry target=%q attempt=%d/%d delay=%v err=%q",
			what, attempt+1, d.retries, delay, err)
		time.Sleep(delay)
	}
}

// delay is the backoff before attempt+2: the initial backoff doubled per
// attempt, capped at maxConnectBackoff, jittered uniformly over
// [half, full] so synchronized restarts spread out.
func (d *dialer) delay(attempt int) time.Duration {
	base := d.backoff
	if base <= 0 {
		base = time.Millisecond
	}
	for i := 0; i < attempt && base < maxConnectBackoff; i++ {
		base *= 2
	}
	if base > maxConnectBackoff {
		base = maxConnectBackoff
	}
	half := base / 2
	if d.rnd == nil || half <= 0 {
		return base
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return half + time.Duration(d.rnd.Int63n(int64(half)+1))
}

// dialRaw connects to addr under the same retry and backoff policy as dial
// but performs no handshake — the resume preamble is the session's job —
// and honors ctx between attempts, so an expiring reconnect window stops
// the retries instead of sleeping through its own deadline.
func (d *dialer) dialRaw(ctx context.Context, what, addr string) (net.Conn, error) {
	var last error
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		c, err := net.DialTimeout("tcp", addr, handshakeTimeout)
		if err == nil {
			return c, nil
		}
		last = err
		if attempt+1 >= d.retries {
			return nil, fmt.Errorf("%s: giving up after %d attempts: %w", what, attempt+1, last)
		}
		delay := d.delay(attempt)
		log.Printf("event=connect-retry target=%q attempt=%d/%d delay=%v err=%q",
			what, attempt+1, d.retries, delay, err)
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(delay):
		}
	}
}

func splitNonEmpty(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func contains(list []string, v string) bool {
	for _, x := range list {
		if x == v {
			return true
		}
	}
	return false
}

func buildOptions(perPair bool, variant string) (ppclust.Options, error) {
	var opts ppclust.Options
	if perPair {
		opts.Masking = ppclust.PerPairMasking
	}
	switch variant {
	case "float64":
		opts.Variant = ppclust.Float64Arithmetic
	case "int64":
		opts.Variant = ppclust.Int64Arithmetic
	case "modp":
		opts.Variant = ppclust.ModPArithmetic
	default:
		return opts, fmt.Errorf("unknown variant %q", variant)
	}
	return opts, nil
}
