package main

import (
	"errors"
	mrand "math/rand"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ppclust"
	"ppclust/internal/netid"
)

func testDialer(retries int) *dialer {
	return &dialer{retries: retries, backoff: time.Millisecond, rnd: mrand.New(mrand.NewSource(1))}
}

// admissionServer accepts connections and answers each hello with the
// scripted decision, one per connection; nil means accept.
func admissionServer(t *testing.T, script []*netid.RejectedError) (addr string, served *atomic.Int32) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	served = &atomic.Int32{}
	go func() {
		for i := 0; ; i++ {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			served.Add(1)
			go func(i int, conn net.Conn) {
				defer conn.Close()
				if _, err := netid.AcceptHelloWithin(conn, time.Second); err != nil {
					return
				}
				if i < len(script) && script[i] != nil {
					netid.SendReject(conn, script[i].Code, script[i].Detail)
					return
				}
				netid.SendAcceptRouting(conn, 1)
				// Keep the accepted connection open until the dialer is done
				// with it; closing immediately could race the accept read.
				time.Sleep(50 * time.Millisecond)
			}(i, conn)
		}
	}()
	return ln.Addr().String(), served
}

func TestDialRetriesConnectFailuresThenSucceeds(t *testing.T) {
	// Reserve an address, close the listener (dials now fail), and revive
	// it after the first failed attempt.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	go func() {
		time.Sleep(20 * time.Millisecond)
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			return // port raced away; the test will fail on the dial below
		}
		defer ln.Close()
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		if _, err := netid.AcceptHelloWithin(conn, time.Second); err == nil {
			netid.SendAcceptRouting(conn, 1)
			time.Sleep(50 * time.Millisecond)
		}
	}()
	conn, err := testDialer(10).dial("third party", addr, tpHandshake("A", "s1", nil))
	if err != nil {
		t.Fatalf("dial never recovered: %v", err)
	}
	conn.Close()
}

// TestDialTypedRefusalIsFinal: a non-retryable reject ends the attempts
// immediately — the server told us retrying cannot help — and classifies
// as a session refusal (exit code 5).
func TestDialTypedRefusalIsFinal(t *testing.T) {
	addr, served := admissionServer(t, []*netid.RejectedError{
		{Code: netid.RejectCapacity, Detail: "full"},
		{Code: netid.RejectCapacity, Detail: "full"},
	})
	_, err := testDialer(5).dial("third party", addr, tpHandshake("A", "s1", nil))
	if err == nil {
		t.Fatal("refused dial succeeded")
	}
	if !errors.Is(err, ppclust.ErrSessionRefused) {
		t.Fatalf("refusal not classified: %v", err)
	}
	var rej *netid.RejectedError
	if !errors.As(err, &rej) || rej.Code != netid.RejectCapacity {
		t.Fatalf("reject reason lost: %v", err)
	}
	if got := served.Load(); got != 1 {
		t.Fatalf("dialer retried a final refusal: %d connections", got)
	}
	if code := reportFailure(err); code != exitRefused {
		t.Fatalf("exit code %d, want %d", code, exitRefused)
	}
}

// TestDialRetryableRefusalRetries: the draining reject is marked
// retryable, so the dialer backs off and tries again.
func TestDialRetryableRefusalRetries(t *testing.T) {
	addr, served := admissionServer(t, []*netid.RejectedError{
		{Code: netid.RejectDraining, Detail: "draining"},
		nil, // second attempt admitted
	})
	conn, err := testDialer(5).dial("third party", addr, tpHandshake("A", "s1", nil))
	if err != nil {
		t.Fatalf("dial did not survive a retryable refusal: %v", err)
	}
	conn.Close()
	if got := served.Load(); got != 2 {
		t.Fatalf("served %d connections, want 2", got)
	}
}

func TestDialGivesUpAfterRetries(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // nothing listens: every dial fails
	_, err = testDialer(3).dial("third party", addr, tpHandshake("A", "s1", nil))
	if err == nil {
		t.Fatal("dial to a dead address succeeded")
	}
	if !strings.Contains(err.Error(), "after 3 attempts") {
		t.Fatalf("attempt count lost: %v", err)
	}
}

// TestDelayCapAndJitter: the backoff doubles, never exceeds the cap, and
// jitters within [base/2, base].
func TestDelayCapAndJitter(t *testing.T) {
	d := &dialer{retries: 10, backoff: 100 * time.Millisecond, rnd: mrand.New(mrand.NewSource(7))}
	prevBase := time.Duration(0)
	for attempt := 0; attempt < 12; attempt++ {
		base := d.backoff << attempt
		if base > maxConnectBackoff || base <= 0 {
			base = maxConnectBackoff
		}
		for i := 0; i < 50; i++ {
			got := d.delay(attempt)
			if got < base/2 || got > base {
				t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, got, base/2, base)
			}
			if got > maxConnectBackoff {
				t.Fatalf("attempt %d: delay %v above cap", attempt, got)
			}
		}
		if base < prevBase {
			t.Fatalf("attempt %d: base %v shrank from %v", attempt, base, prevBase)
		}
		prevBase = base
	}
}

// TestLegacyHandshakeSendsNoSession: without -session the holder speaks
// the legacy preamble and never waits for an admission frame.
func TestLegacyHandshakeSendsNoSession(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	got := make(chan netid.Hello, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		hello, err := netid.AcceptHelloWithin(conn, time.Second)
		if err == nil {
			got <- hello
		}
		// Deliberately send nothing back: legacy clients must not wait.
	}()
	conn, err := testDialer(1).dial("third party", ln.Addr().String(), tpHandshake("B", "", nil))
	if err != nil {
		t.Fatalf("legacy dial: %v", err)
	}
	conn.Close()
	select {
	case hello := <-got:
		if hello.Extended() || hello.Name != "B" {
			t.Fatalf("legacy hello parsed as %+v", hello)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server never saw the hello")
	}
}
