package main

import (
	"fmt"
	"io"

	"ppclust/internal/alphabet"
	"ppclust/internal/attack"
	"ppclust/internal/protocol"
	"ppclust/internal/rng"
	"ppclust/internal/wire"
)

// runAttackFrequency measures the Section 4.1 frequency attack in both
// masking modes: exact recovery under batch masks, collapse under per-pair
// masks.
func runAttackFrequency(w io.Writer) error {
	fmt.Fprintln(w, "third party attacks DHK's numeric vector; domain [20,50], skewed prior")
	fmt.Fprintln(w, "(paper 4.1: \"If the range of values ... is limited and there is enough")
	fmt.Fprintln(w, " statistics to realize a frequency attack, TP can infer input values\")")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%10s %8s %18s\n", "mode", "trials", "mean recovery")

	prior := attack.FrequencyPrior{Lo: 20, Hi: 50, Weight: make([]float64, 31)}
	for i := range prior.Weight {
		prior.Weight[i] = float64((i + 1) * (i + 1))
	}
	sample := func(s rng.Stream, n int) []int64 {
		out := make([]int64, n)
		total := 0.0
		for _, wt := range prior.Weight {
			total += wt
		}
		for i := range out {
			target := rng.Float64(s) * total
			acc := 0.0
			for v, wt := range prior.Weight {
				acc += wt
				if acc >= target {
					out[i] = prior.Lo + int64(v)
					break
				}
			}
		}
		return out
	}

	for _, mode := range []protocol.Mode{protocol.Batch, protocol.PerPair} {
		const trials = 20
		sum := 0.0
		for trial := 0; trial < trials; trial++ {
			gen := rng.NewAESCTR(rng.SeedFromUint64(uint64(1000 + trial)))
			ys := sample(gen, 30)
			xs := sample(gen, 3)
			seedJK := rng.SeedFromUint64(uint64(5000 + trial))
			seedJT := rng.SeedFromUint64(uint64(6000 + trial))
			rows := 0
			if mode == protocol.PerPair {
				rows = len(ys)
			}
			disguised, err := protocol.NumericInitiatorInt(xs,
				rng.NewAESCTR(seedJK), rng.NewAESCTR(seedJT), protocol.DefaultIntParams, mode, rows)
			if err != nil {
				return err
			}
			s, err := protocol.NumericResponderInt(disguised, ys, rng.NewAESCTR(seedJK),
				protocol.DefaultIntParams, mode)
			if err != nil {
				return err
			}
			guess, err := attack.FrequencyAttack(s, rng.NewAESCTR(seedJT),
				protocol.DefaultIntParams, mode, prior)
			if err != nil {
				continue // no consistent hypothesis: recovery 0
			}
			sum += attack.RecoveryRate(guess, ys)
		}
		fmt.Fprintf(w, "%10s %8d %17.1f%%\n", mode, trials, sum/trials*100)
	}
	fmt.Fprintln(w, "\nSHAPE: batch masking is fully broken under these conditions; the paper's")
	fmt.Fprintln(w, "per-pair countermeasure reduces the attack to near-chance")
	return nil
}

// runAttackEavesdrop demonstrates the Section 4.1 channel analysis: what an
// observer of each unsecured channel infers, and that AES-GCM channels
// remove the inference.
func runAttackEavesdrop(w io.Writer) error {
	x, y := int64(37), int64(90)
	maskJT := int64(7)

	fmt.Fprintln(w, "scenario: x=37 at DHJ, y=90 at DHK, RJT=7, RJK odd")
	d, err := protocol.NumericInitiatorInt([]int64{x}, rng.Scripted(5), rng.Scripted(uint64(maskJT)),
		protocol.DefaultIntParams, protocol.Batch, 0)
	if err != nil {
		return err
	}
	s, err := protocol.NumericResponderInt(d, []int64{y}, rng.Scripted(5),
		protocol.DefaultIntParams, protocol.Batch)
	if err != nil {
		return err
	}

	cx := attack.EavesdropXCandidates(d.At(0, 0), maskJT)
	fmt.Fprintf(w, "\nTP eavesdropping the plaintext DHJ->DHK channel (sees x''=%d, knows R=%d):\n", d.At(0, 0), maskJT)
	fmt.Fprintf(w, "  x candidates: {%d, %d}   (true x = %d is exposed up to 1 bit)\n", cx[0], cx[1], x)

	cy := attack.EavesdropYCandidates(s.At(0, 0), maskJT, x)
	fmt.Fprintf(w, "DHJ eavesdropping the plaintext DHK->TP channel (sees m=%d, knows R and x):\n", s.At(0, 0))
	fmt.Fprintf(w, "  y candidates: {%d, %d}   (true y = %d is exposed up to 1 bit)\n", cy[0], cy[1], y)

	// Now the secured channel: the observer sees AES-GCM ciphertext only.
	a, b := wire.Pipe()
	var observed []byte
	tapped := wire.Tap(a, func(dir string, frame []byte) {
		observed = append([]byte(nil), frame...)
	})
	var key [32]byte
	key[0] = 9
	sa, err := wire.Secure(tapped, key, true)
	if err != nil {
		return err
	}
	sb, err := wire.Secure(b, key, false)
	if err != nil {
		return err
	}
	payload := fmt.Sprintf("x''=%d", d.At(0, 0))
	if err := sa.Send([]byte(payload)); err != nil {
		return err
	}
	if _, err := sb.Recv(); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nwith the paper-mandated secured channel the observer sees %d ciphertext\n", len(observed))
	fmt.Fprintf(w, "bytes bearing no plaintext structure (contains \"%s\": %v)\n",
		payload, containsSub(observed, []byte(payload)))
	fmt.Fprintln(w, "SHAPE: matches the paper's requirement that both channels be secured")
	return nil
}

func containsSub(hay, needle []byte) bool {
	for i := 0; i+len(needle) <= len(hay); i++ {
		match := true
		for j := range needle {
			if hay[i+j] != needle[j] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// runAttackAlpha demonstrates the alphanumeric difference-matrix leak the
// paper defers to future work.
func runAttackAlpha(w io.Writer) error {
	a := alphabet.DNA
	sTrue := "ACGTAC"
	tTrue := "GGTA"
	seed := rng.SeedFromUint64(99)

	disguised := protocol.AlphaInitiator(
		[]protocol.SymbolString{protocol.SymbolString(a.MustEncode(sTrue))}, a, rng.NewAESCTR(seed))
	inter := protocol.AlphaResponder(
		[]protocol.SymbolString{protocol.SymbolString(a.MustEncode(tTrue))}, disguised, a)
	diff, err := attack.StripAlphaMasks(inter[0][0], a, rng.NewAESCTR(seed))
	if err != nil {
		return err
	}
	sC, tC, err := attack.RecoverStringsUpToShift(diff, a)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "the TP's pre-flattening view is the full difference matrix s[p]-t[q] mod |A|,")
	fmt.Fprintln(w, "which determines both strings up to one additive shift. candidates:")
	for c := range sC {
		marker := ""
		if a.Decode(sC[c]) == sTrue && a.Decode(tC[c]) == tTrue {
			marker = "   <-- true strings"
		}
		fmt.Fprintf(w, "  shift %d: s=%q t=%q%s\n", c, a.Decode(sC[c]), a.Decode(tC[c]), marker)
	}
	fmt.Fprintf(w, "\nresidual privacy of the pair: log2(|A|) = 2 bits for DNA\n")
	fmt.Fprintln(w, "SHAPE: confirms why the paper flags alphanumeric privacy analysis as future work")
	return nil
}
