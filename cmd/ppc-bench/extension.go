package main

import (
	"fmt"
	"io"

	"ppclust"
)

// runExtension demonstrates E17: the ordered/hierarchical categorical
// distance functions the paper leaves as future work, evaluated privately
// and checked against the centralized baseline.
func runExtension(w io.Writer) error {
	severity := ppclust.MustNewOrdering("mild", "moderate", "severe", "critical")
	tax := ppclust.MustNewTaxonomy("disease")
	tax.MustAdd("infectious", "disease").
		MustAdd("viral", "infectious").
		MustAdd("influenza", "viral").
		MustAdd("measles", "viral").
		MustAdd("bacterial", "infectious").
		MustAdd("tuberculosis", "bacterial").
		MustAdd("chronic", "disease").
		MustAdd("diabetes", "chronic")

	schema := ppclust.Schema{Attrs: []ppclust.Attribute{
		{Name: "severity", Type: ppclust.Ordered, Order: severity},
		{Name: "diagnosis", Type: ppclust.Hierarchical, Taxonomy: tax},
	}}
	a := ppclust.MustNewTable(schema)
	a.MustAppendRow("mild", "influenza")
	a.MustAppendRow("moderate", "measles")
	a.MustAppendRow("critical", "diabetes")
	b := ppclust.MustNewTable(schema)
	b.MustAppendRow("mild", "tuberculosis")
	b.MustAppendRow("severe", "diabetes")
	parts := []ppclust.Partition{{Site: "A", Table: a}, {Site: "B", Table: b}}

	ms, ids, err := ppclust.BuildDissimilarity(schema, parts, ppclust.Options{Random: detRandom})
	if err != nil {
		return err
	}
	base, err := ppclust.CentralizedBaseline(schema, parts)
	if err != nil {
		return err
	}
	worst := 0.0
	for i := range ms {
		d, err := ms[i].MaxDifference(base[i])
		if err != nil {
			return err
		}
		if d > worst {
			worst = d
		}
	}
	fmt.Fprintln(w, "paper 4.3: ordered/hierarchical categorical distances \"left as future work\"")
	fmt.Fprintln(w, "implemented: rank distance via the numeric protocol; taxonomy distance on")
	fmt.Fprintln(w, "deterministically encrypted root paths")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "max |private − centralized| over both attributes: %g\n", worst)
	fmt.Fprintln(w, "\nnormalized taxonomy distances at the third party (values never revealed):")
	m := ms[1]
	fmt.Fprintf(w, "  d(%v, %v) = %.3f  (influenza vs measles: siblings)\n", ids[0], ids[1], m.At(0, 1))
	fmt.Fprintf(w, "  d(%v, %v) = %.3f  (influenza vs tuberculosis: cousins)\n", ids[0], ids[3], m.At(0, 3))
	fmt.Fprintf(w, "  d(%v, %v) = %.3f  (influenza vs diabetes: different branch)\n", ids[0], ids[2], m.At(0, 2))
	fmt.Fprintln(w, "SHAPE: sibling < cousin < cross-branch, with zero accuracy loss")
	return nil
}
