package main

import (
	"fmt"
	"io"

	"ppclust"
	"ppclust/internal/alphabet"
	"ppclust/internal/protocol"
	"ppclust/internal/rng"
)

// runFig3 traces the paper's Figure 3: x=3 at DHJ, y=8 at DHK, RJK=5,
// RJT=7.
func runFig3(w io.Writer) error {
	params := protocol.DefaultIntParams
	disguised, err := protocol.NumericInitiatorInt([]int64{3},
		rng.Scripted(5), rng.Scripted(7), params, protocol.Batch, 0)
	if err != nil {
		return err
	}
	s, err := protocol.NumericResponderInt(disguised, []int64{8},
		rng.Scripted(5), params, protocol.Batch)
	if err != nil {
		return err
	}
	dist, err := protocol.NumericThirdPartyInt(s, rng.Scripted(7), params, protocol.Batch)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "site DHJ:  x = 3, RJK = 5 (odd -> DHJ negates), RJT = 7")
	fmt.Fprintf(w, "           x' = -3, x'' = x' + RJT = %d          (paper: 4)\n", disguised.At(0, 0))
	fmt.Fprintf(w, "site DHK:  y = 8, RJK = 5 -> DHK keeps sign; m = %d   (paper: 12)\n", s.At(0, 0))
	fmt.Fprintf(w, "site TP:   |m - RJT| = |%d - 7| = %d               (paper: |x-y| = 5)\n",
		s.At(0, 0), dist.At(0, 0))
	if dist.At(0, 0) != 5 {
		return fmt.Errorf("worked example diverged: got %d", dist.At(0, 0))
	}
	fmt.Fprintln(w, "MATCH: reproduces the paper exactly")
	return nil
}

// runFig7 traces the paper's Figure 7: S="abc", T="bd" over A={a,b,c,d},
// R="013".
func runFig7(w io.Writer) error {
	abcd := alphabet.MustNew("abcd", []rune("abcd"))
	s := protocol.SymbolString(abcd.MustEncode("abc"))
	t := protocol.SymbolString(abcd.MustEncode("bd"))

	disguised := protocol.AlphaInitiator([]protocol.SymbolString{s}, abcd, rng.Scripted(0, 1, 3))
	fmt.Fprintf(w, "site DHJ:  S = \"abc\", R = \"013\" -> S' = %q      (paper: \"acb\")\n",
		abcd.Decode(disguised[0]))

	inter := protocol.AlphaResponder([]protocol.SymbolString{t}, disguised, abcd)
	m := inter[0][0]
	fmt.Fprintf(w, "site DHK:  T = \"bd\"; difference matrix M:\n")
	for q := 0; q < m.Rows; q++ {
		fmt.Fprintf(w, "           ")
		for p := 0; p < m.Cols; p++ {
			fmt.Fprintf(w, "%c ", abcd.Rune(m.At(q, p)))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "           (paper: rows \"dba\" and \"bdc\")")

	ccms, err := protocol.AlphaThirdPartyCCMs(inter, abcd, rng.Scripted(0, 1, 3))
	if err != nil {
		return err
	}
	ccm := ccms[0][0]
	fmt.Fprintln(w, "site TP:   decoded CCM (0 = characters equal):")
	for q := 0; q < ccm.Rows; q++ {
		fmt.Fprintf(w, "           ")
		for p := 0; p < ccm.Cols; p++ {
			fmt.Fprintf(w, "%d ", ccm.At(q, p))
		}
		fmt.Fprintln(w)
	}
	if ccm.At(0, 1) != 0 {
		return fmt.Errorf("CCM[0][1] != 0")
	}
	fmt.Fprintln(w, "           CCM[0][1] = 0 implies s[1] = t[0] = 'b'  (paper: same)")

	dist, err := protocol.AlphaThirdParty(inter, abcd, rng.Scripted(0, 1, 3))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "site TP:   edit distance over CCM = %d (abc -> bd: delete 'a', substitute c->d)\n",
		dist.At(0, 0))
	fmt.Fprintln(w, "MATCH: reproduces the paper exactly")
	return nil
}

// runFig13 publishes a small session's result in the Figure 13 layout.
func runFig13(w io.Writer) error {
	schema := ppclust.Schema{Attrs: []ppclust.Attribute{
		{Name: "x", Type: ppclust.Numeric},
		{Name: "tag", Type: ppclust.Categorical},
	}}
	a := ppclust.MustNewTable(schema)
	a.MustAppendRow(1.0, "r")
	a.MustAppendRow(30.0, "g")
	a.MustAppendRow(2.0, "r")
	b := ppclust.MustNewTable(schema)
	b.MustAppendRow(31.0, "g")
	b.MustAppendRow(3.0, "r")
	b.MustAppendRow(29.0, "g")
	c := ppclust.MustNewTable(schema)
	c.MustAppendRow(1.5, "r")
	c.MustAppendRow(30.5, "g")

	out, err := ppclust.Cluster(schema,
		[]ppclust.Partition{{Site: "A", Table: a}, {Site: "B", Table: b}, {Site: "C", Table: c}},
		map[string]ppclust.ClusterRequest{"A": {Linkage: ppclust.Average, K: 3}},
		ppclust.Options{})
	if err != nil {
		return err
	}
	res := out.Results["A"]
	fmt.Fprintln(w, "published result (cluster membership lists only, per Figure 13):")
	fmt.Fprint(w, res.Format())
	fmt.Fprintln(w, "\npublished quality (\"average of square distance between members\"):")
	for i, q := range res.Quality {
		fmt.Fprintf(w, "  Cluster%d: size=%d avgSqDist=%.4f\n", i+1, q.Size, q.AvgSquaredDistance)
	}
	fmt.Fprintln(w, "the dissimilarity matrix itself stays at the third party")
	return nil
}
