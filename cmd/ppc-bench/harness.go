package main

import (
	"fmt"
	"io"

	"ppclust"
	"ppclust/internal/dataset"
	"ppclust/internal/gen"
	"ppclust/internal/keys"
	"ppclust/internal/party"
	"ppclust/internal/protocol"
	"ppclust/internal/rng"
)

// detRandom gives each party reproducible randomness so tables are stable
// across runs.
func detRandom(party string) io.Reader {
	seed := rng.SeedFromBytes([]byte("ppc-bench/" + party))
	return keys.StreamReader(rng.NewAESCTR(seed))
}

// numericParts builds k holders with the given per-site object counts over
// a single numeric attribute, values drawn uniformly from [0, 1000).
func numericParts(counts []int, seed uint64) ([]dataset.Partition, error) {
	schema := dataset.Schema{Attrs: []dataset.Attribute{{Name: "x", Type: dataset.Numeric}}}
	s := rng.NewXoshiro(rng.SeedFromUint64(seed))
	parts := make([]dataset.Partition, len(counts))
	names := gen.SiteNames(len(counts))
	for i, n := range counts {
		t, err := dataset.NewTable(schema)
		if err != nil {
			return nil, err
		}
		for r := 0; r < n; r++ {
			// Continuous values keep gob's variable-width float encoding
			// at a stable ~9 bytes/element across sweep sizes.
			if err := t.AppendRow(rng.Float64(s) * 1000); err != nil {
				return nil, err
			}
		}
		parts[i] = dataset.Partition{Site: names[i], Table: t}
	}
	return parts, nil
}

// alphaParts builds k holders over a single DNA attribute with strings of
// exactly the given length.
func alphaParts(counts []int, length int, seed uint64) ([]dataset.Partition, error) {
	schema := dataset.Schema{Attrs: []dataset.Attribute{
		{Name: "seq", Type: dataset.Alphanumeric, Alphabet: dnaAlpha()},
	}}
	s := rng.NewXoshiro(rng.SeedFromUint64(seed))
	parts := make([]dataset.Partition, len(counts))
	names := gen.SiteNames(len(counts))
	for i, n := range counts {
		t, err := dataset.NewTable(schema)
		if err != nil {
			return nil, err
		}
		for r := 0; r < n; r++ {
			buf := make([]rune, length)
			for c := range buf {
				buf[c] = []rune("ACGT")[rng.Symbol(s, 4)]
			}
			if err := t.AppendRow(string(buf)); err != nil {
				return nil, err
			}
		}
		parts[i] = dataset.Partition{Site: names[i], Table: t}
	}
	return parts, nil
}

// catParts builds k holders over a single categorical attribute drawn from
// a small palette.
func catParts(counts []int, seed uint64) ([]dataset.Partition, error) {
	schema := dataset.Schema{Attrs: []dataset.Attribute{{Name: "c", Type: dataset.Categorical}}}
	s := rng.NewXoshiro(rng.SeedFromUint64(seed))
	parts := make([]dataset.Partition, len(counts))
	names := gen.SiteNames(len(counts))
	for i, n := range counts {
		t, err := dataset.NewTable(schema)
		if err != nil {
			return nil, err
		}
		for r := 0; r < n; r++ {
			if err := t.AppendRow(fmt.Sprintf("v%d", rng.Symbol(s, 8))); err != nil {
				return nil, err
			}
		}
		parts[i] = dataset.Partition{Site: names[i], Table: t}
	}
	return parts, nil
}

// runSession executes a session over the partitions and returns its
// outcome.
func runSession(parts []dataset.Partition, mode protocol.Mode) (*party.SessionOutcome, error) {
	cfg := party.Config{
		Schema:  parts[0].Table.Schema(),
		Mode:    mode,
		Variant: party.Float64Variant,
	}
	return party.RunInMemory(cfg, parts, nil, detRandom)
}

// sentBy sums the bytes a holder sent on all its links.
func sentBy(out *party.SessionOutcome, name string, peers ...string) uint64 {
	total := uint64(0)
	for _, p := range peers {
		b, _ := out.Traffic[party.LinkName(name, p)].Sent()
		total += b
	}
	return total
}

// sessionOverhead measures the fixed per-session traffic of one holder
// (handshakes, census, group key, request, empty matrices) by running the
// same session shape with zero objects. Cost experiments subtract it so
// the fits see only the data-dependent traffic the paper analyzes.
func sessionOverhead(mk func(counts []int, seed uint64) ([]dataset.Partition, error), holders int) (float64, error) {
	counts := make([]int, holders)
	parts, err := mk(counts, 0)
	if err != nil {
		return 0, err
	}
	out, err := runSession(parts, protocol.Batch)
	if err != nil {
		return 0, err
	}
	peers := append([]string{}, gen.SiteNames(holders)[1:]...)
	peers = append(peers, party.TPName)
	return float64(sentBy(out, "A", peers...)), nil
}

// minusOverhead clamps measured-minus-overhead at a small positive floor so
// fits stay well defined.
func minusOverhead(measured uint64, overhead float64) float64 {
	v := float64(measured) - overhead
	if v < 1 {
		v = 1
	}
	return v
}

func dnaAlpha() *ppclust.Alphabet {
	return ppclust.DNA
}
