package main

import (
	"fmt"
	"io"
	"time"

	"ppclust"
	"ppclust/internal/dissim"
	"ppclust/internal/eval"
	"ppclust/internal/hcluster"
	"ppclust/internal/kmeans"
	"ppclust/internal/protocol"
	"ppclust/internal/rng"
)

// runAccuracy verifies the "no loss of accuracy" claim end to end for every
// protocol variant.
func runAccuracy(w io.Writer) error {
	schema := ppclust.Schema{Attrs: []ppclust.Attribute{
		{Name: "age", Type: ppclust.Numeric},
		{Name: "diag", Type: ppclust.Categorical},
		{Name: "dna", Type: ppclust.Alphanumeric, Alphabet: ppclust.DNA},
	}}
	a := ppclust.MustNewTable(schema)
	a.MustAppendRow(20.0, "flu", "ACACAC")
	a.MustAppendRow(71.0, "cold", "GTGTGT")
	a.MustAppendRow(24.0, "flu", "ACACCA")
	b := ppclust.MustNewTable(schema)
	b.MustAppendRow(25.0, "flu", "ACAC")
	b.MustAppendRow(69.0, "cold", "GTGTT")
	c := ppclust.MustNewTable(schema)
	c.MustAppendRow(23.0, "flu", "ACACA")
	c.MustAppendRow(74.0, "cold", "GTGTG")
	parts := []ppclust.Partition{{Site: "A", Table: a}, {Site: "B", Table: b}, {Site: "C", Table: c}}

	base, err := ppclust.CentralizedBaseline(schema, parts)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "3 holders, mixed schema; per-attribute max |private - centralized| entry:")
	fmt.Fprintf(w, "%10s %14s %14s %14s\n", "variant", "numeric", "categorical", "alphanumeric")
	for _, v := range []struct {
		name string
		opt  ppclust.NumericVariant
	}{
		{"float64", ppclust.Float64Arithmetic},
		{"int64", ppclust.Int64Arithmetic},
		{"modp", ppclust.ModPArithmetic},
	} {
		ms, _, err := ppclust.BuildDissimilarity(schema, parts, ppclust.Options{Variant: v.opt, Random: detRandom})
		if err != nil {
			return err
		}
		devs := make([]float64, len(ms))
		for i := range ms {
			devs[i], err = ms[i].MaxDifference(base[i])
			if err != nil {
				return err
			}
		}
		fmt.Fprintf(w, "%10s %14.3g %14.3g %14.3g\n", v.name, devs[0], devs[1], devs[2])
	}
	fmt.Fprintln(w, "\nSHAPE: zero loss for exact variants; ≤1e-9 float rounding for float64 —")
	fmt.Fprintln(w, "the paper's \"there is no loss of accuracy\" claim, versus sanitization methods")
	return nil
}

// runShapes is the hierarchical-vs-k-means comparison motivating the
// paper's choice of clustering family.
func runShapes(w io.Writer) error {
	fmt.Fprintln(w, "(a) non-spherical clusters: two concentric rings, 150 points")
	rings, err := ppclust.GenRings(50, 100, 1, 5, 0.05, 42)
	if err != nil {
		return err
	}
	xs, _ := rings.Table.NumericCol(0)
	ys, _ := rings.Table.NumericCol(1)
	n := rings.Table.Len()
	m := dissim.FromLocal(n, func(i, j int) float64 {
		dx, dy := xs[i]-xs[j], ys[i]-ys[j]
		return dx*dx + dy*dy
	})

	fmt.Fprintf(w, "%22s %8s\n", "method", "ARI")
	for _, link := range []hcluster.Linkage{hcluster.Single, hcluster.Complete, hcluster.Average} {
		dg, err := hcluster.Cluster(m, link)
		if err != nil {
			return err
		}
		labels, err := dg.Labels(2)
		if err != nil {
			return err
		}
		ari, err := eval.AdjustedRandIndex(rings.Truth, labels)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%22s %8.3f\n", "hierarchical/"+link.String(), ari)
	}
	points := make([][]float64, n)
	for i := range points {
		points[i] = []float64{xs[i], ys[i]}
	}
	km, err := kmeans.KMeans(points, 2, rng.NewXoshiro(rng.SeedFromUint64(7)), kmeans.Config{})
	if err != nil {
		return err
	}
	ariKM, err := eval.AdjustedRandIndex(rings.Truth, km.Labels)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%22s %8.3f\n", "k-means (baseline)", ariKM)
	fmt.Fprintln(w, "SHAPE: single-linkage recovers the rings exactly; k-means cannot")
	fmt.Fprintln(w, "(paper: partitioning methods \"tend to result in spherical clusters\")")

	fmt.Fprintln(w, "\n(b) string data: 4 DNA families x 10 strains")
	dna, err := ppclust.GenDNAFamilies(ppclust.DNASpec{Families: 4, PerFamily: 10, Length: 50, SubRate: 0.05, IndelRate: 0.02}, 43)
	if err != nil {
		return err
	}
	parts, truth, err := ppclust.SplitRoundRobin(dna, 2)
	if err != nil {
		return err
	}
	out, err := ppclust.Cluster(dna.Table.Schema(), parts,
		map[string]ppclust.ClusterRequest{"A": {Linkage: ppclust.Average, K: 4}},
		ppclust.Options{Random: detRandom})
	if err != nil {
		return err
	}
	labels, err := ppclust.ResultLabels(out.Results["A"], out.Report.ObjectIDs)
	if err != nil {
		return err
	}
	ari, err := eval.AdjustedRandIndex(truth, labels)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "hierarchical over private edit-distance matrix: ARI = %.3f\n", ari)
	fmt.Fprintln(w, "k-means: not applicable — no mean is defined for strings (type-level fact;")
	fmt.Fprintln(w, "the kmeans package accepts only numeric vectors, as the paper argues)")
	return nil
}

// runScaleK measures session traffic and wall time against the number of
// data holders: C(k,2) pairwise protocol runs.
func runScaleK(w io.Writer) error {
	fmt.Fprintln(w, "one numeric attribute, 120 objects total, split evenly over k holders")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%4s %8s %14s %12s\n", "k", "pairs", "total bytes", "wall time")
	for _, k := range []int{2, 3, 4, 5, 6} {
		counts := make([]int, k)
		for i := range counts {
			counts[i] = 120 / k
		}
		parts, err := numericParts(counts, uint64(k))
		if err != nil {
			return err
		}
		start := time.Now()
		out, err := runSession(parts, protocol.Batch)
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		total := uint64(0)
		for _, ctr := range out.Traffic {
			b, _ := ctr.Sent()
			total += b
		}
		fmt.Fprintf(w, "%4d %8d %14d %12s\n", k, k*(k-1)/2, total, elapsed.Round(time.Millisecond))
	}
	fmt.Fprintln(w, "\nSHAPE: the comparison protocol repeats C(k,2) times per attribute (paper")
	fmt.Fprintln(w, "Section 4); with per-holder size fixed by the census, cross-site traffic")
	fmt.Fprintln(w, "stays dominated by the per-pair s matrices")
	return nil
}
