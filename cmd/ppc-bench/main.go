// ppc-bench regenerates every evaluation artifact of the İnan et al. paper
// (worked examples, communication-cost analyses, security analyses and
// accuracy claims) as reproducible tables. See EXPERIMENTS.md for the
// mapping from experiment ids to paper sections.
//
// Usage:
//
//	ppc-bench                     # run everything
//	ppc-bench -run cost           # run experiments whose id contains "cost"
//	ppc-bench -list               # list experiment ids
//	ppc-bench -json BENCH_1.json  # write the perf-regression report
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
)

// experiment is one regenerable artifact.
type experiment struct {
	id    string
	title string
	run   func(w io.Writer) error
}

var experiments = []experiment{
	{"fig3", "E1: Figure 3 worked numeric example", runFig3},
	{"fig7", "E3: Figure 7 worked alphanumeric example", runFig7},
	{"accuracy", "E2/E4/E5/E9: private vs centralized accuracy", runAccuracy},
	{"fig13", "E10: Figure 13 result publication", runFig13},
	{"cost-numeric", "E6: numeric protocol communication costs", runCostNumeric},
	{"cost-alpha", "E7: alphanumeric protocol communication costs", runCostAlpha},
	{"cost-cat", "E8: categorical protocol communication costs", runCostCategorical},
	{"cost-vs-atallah", "E14: CCM protocol vs Atallah et al. [8] model", runCostAtallah},
	{"attack-freq", "E11: frequency attack, batch vs per-pair", runAttackFrequency},
	{"attack-eaves", "E12: channel eavesdropping inference", runAttackEavesdrop},
	{"attack-alpha", "E16: alphanumeric difference-matrix leak", runAttackAlpha},
	{"shapes", "E13: hierarchical vs k-means on shapes and strings", runShapes},
	{"scale-k", "E15: scaling with the number of data holders", runScaleK},
	{"extension", "E17: ordered/hierarchical categorical attributes (future work)", runExtension},
}

func main() {
	runFilter := flag.String("run", "", "only run experiments whose id contains this substring")
	list := flag.Bool("list", false, "list experiment ids and exit")
	jsonPath := flag.String("json", "", "measure the hot-path benchmark families and write a JSON perf report to this file (e.g. BENCH_1.json), then exit")
	flag.Parse()

	if *list {
		for _, e := range experiments {
			fmt.Printf("%-16s %s\n", e.id, e.title)
		}
		return
	}
	if *jsonPath != "" {
		if err := runBenchJSON(os.Stdout, *jsonPath); err != nil {
			log.Fatalf("bench json: %v", err)
		}
		return
	}
	ran := 0
	for _, e := range experiments {
		if *runFilter != "" && !strings.Contains(e.id, *runFilter) {
			continue
		}
		fmt.Printf("\n================================================================\n")
		fmt.Printf("%s — %s\n", e.id, e.title)
		fmt.Printf("================================================================\n")
		if err := e.run(os.Stdout); err != nil {
			log.Fatalf("%s: %v", e.id, err)
		}
		ran++
	}
	if ran == 0 {
		log.Fatalf("no experiment matches -run %q", *runFilter)
	}
}
