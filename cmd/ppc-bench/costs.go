package main

import (
	"fmt"
	"io"

	"ppclust/internal/costmodel"
	"ppclust/internal/dataset"
	"ppclust/internal/protocol"
)

// runCostNumeric measures the numeric protocol's wire traffic against the
// paper's Section 4.1 analysis: initiator O(n²+n), responder O(m²+m·n).
func runCostNumeric(w io.Writer) error {
	fmt.Fprintln(w, "two holders, one numeric attribute, batch masking; n = m")
	fmt.Fprintln(w, "paper: DHJ sends O(n²+n), DHK sends O(m²+m·n)")
	fmt.Fprintln(w, "(fixed session overhead — handshakes, census, key transport — subtracted)")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%6s %14s %14s %14s %14s\n", "n", "J bytes", "model J", "K bytes", "model K")

	overhead, err := sessionOverhead(numericParts, 2)
	if err != nil {
		return err
	}
	sizes := []int{32, 64, 128, 256}
	var measJ, measK, modelJ, modelK []float64
	for _, n := range sizes {
		parts, err := numericParts([]int{n, n}, uint64(n))
		if err != nil {
			return err
		}
		out, err := runSession(parts, protocol.Batch)
		if err != nil {
			return err
		}
		j := minusOverhead(sentBy(out, "A", "B", "TP"), overhead)
		k := minusOverhead(sentBy(out, "B", "A", "TP"), overhead)
		lj, pj := costmodel.NumericInitiatorElems(n, n, false)
		lk, pk := costmodel.NumericResponderElems(n, n)
		mj := float64(costmodel.Bytes(lj+pj, costmodel.Float64Width))
		mk := float64(costmodel.Bytes(lk+pk, costmodel.Float64Width))
		measJ = append(measJ, j)
		measK = append(measK, k)
		modelJ = append(modelJ, mj)
		modelK = append(modelK, mk)
		fmt.Fprintf(w, "%6d %14.0f %14.0f %14.0f %14.0f\n", n, j, mj, k, mk)
	}
	scaleJ, devJ, err := costmodel.FitScale(measJ, modelJ)
	if err != nil {
		return err
	}
	scaleK, devK, err := costmodel.FitScale(measK, modelK)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nfit: measured = c * model; J: c=%.3f maxdev=%.1f%%; K: c=%.3f maxdev=%.1f%%\n",
		scaleJ, devJ*100, scaleK, devK*100)
	fmt.Fprintln(w, "SHAPE: traffic follows the paper's O(n²+n) / O(m²+m·n) with a wire-format constant")

	fmt.Fprintln(w, "\nbatch vs per-pair masking at the initiator (the countermeasure's price):")
	fmt.Fprintf(w, "%6s %16s %16s %8s\n", "n", "batch J bytes", "per-pair J bytes", "ratio")
	for _, n := range []int{32, 64, 128} {
		parts, err := numericParts([]int{n, n}, uint64(n))
		if err != nil {
			return err
		}
		outB, err := runSession(parts, protocol.Batch)
		if err != nil {
			return err
		}
		parts2, err := numericParts([]int{n, n}, uint64(n))
		if err != nil {
			return err
		}
		outP, err := runSession(parts2, protocol.PerPair)
		if err != nil {
			return err
		}
		// Only the J->K link shows the difference (disguised vector vs
		// disguised matrix).
		jb, _ := outB.Traffic["A->B"].Sent()
		jp, _ := outP.Traffic["A->B"].Sent()
		fmt.Fprintf(w, "%6d %16d %16d %8.1f\n", n, jb, jp, float64(jp)/float64(jb))
	}
	fmt.Fprintln(w, "SHAPE: per-pair masking multiplies initiator protocol traffic by ~m, as analyzed")
	return nil
}

// runCostAlpha measures the alphanumeric protocol against Section 4.2:
// initiator O(n²+n·p), responder O(m²+m·q·n·p).
func runCostAlpha(w io.Writer) error {
	fmt.Fprintln(w, "two holders, one DNA attribute of fixed string length p = q = 16; n = m")
	fmt.Fprintln(w, "paper: DHJ sends O(n²+n·p), DHK sends O(m²+m·q·n·p)")
	fmt.Fprintln(w, "(fixed session overhead subtracted)")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%6s %14s %14s %14s %14s\n", "n", "J bytes", "model J", "K bytes", "model K")

	const p = 16
	overhead, err := sessionOverhead(func(c []int, s uint64) ([]dataset.Partition, error) {
		return alphaParts(c, p, s)
	}, 2)
	if err != nil {
		return err
	}
	sizes := []int{8, 16, 32, 64}
	var measJ, measK, modelJ, modelK []float64
	for _, n := range sizes {
		parts, err := alphaParts([]int{n, n}, p, uint64(n))
		if err != nil {
			return err
		}
		out, err := runSession(parts, protocol.Batch)
		if err != nil {
			return err
		}
		j := minusOverhead(sentBy(out, "A", "B", "TP"), overhead)
		k := minusOverhead(sentBy(out, "B", "A", "TP"), overhead)
		lj, pj := costmodel.AlphaInitiatorElems(n, p)
		lk, pk := costmodel.AlphaResponderElems(n, p, n, p)
		// Local matrices ship as float64, protocol symbols as ~1 byte in
		// gob; model in elements with uniform width and let the fit absorb
		// the constant.
		mj := float64(costmodel.Bytes(lj, costmodel.Float64Width) + costmodel.Bytes(pj, costmodel.SymbolWidth))
		mk := float64(costmodel.Bytes(lk, costmodel.Float64Width) + costmodel.Bytes(pk, costmodel.SymbolWidth))
		measJ = append(measJ, j)
		measK = append(measK, k)
		modelJ = append(modelJ, mj)
		modelK = append(modelK, mk)
		fmt.Fprintf(w, "%6d %14.0f %14.0f %14.0f %14.0f\n", n, j, mj, k, mk)
	}
	_, devJ, err := costmodel.FitScale(measJ, modelJ)
	if err != nil {
		return err
	}
	_, devK, err := costmodel.FitScale(measK, modelK)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nfit deviation: J %.1f%%, K %.1f%%\n", devJ*100, devK*100)

	fmt.Fprintln(w, "\nstring-length sweep at fixed n = m = 16:")
	fmt.Fprintf(w, "%6s %14s %14s\n", "p", "K bytes", "model K")
	var measP, modelP []float64
	for _, pl := range []int{8, 16, 32, 64} {
		parts, err := alphaParts([]int{16, 16}, pl, uint64(pl))
		if err != nil {
			return err
		}
		out, err := runSession(parts, protocol.Batch)
		if err != nil {
			return err
		}
		k := minusOverhead(sentBy(out, "B", "A", "TP"), overhead)
		lk, pk := costmodel.AlphaResponderElems(16, pl, 16, pl)
		mk := float64(costmodel.Bytes(lk, costmodel.Float64Width) + costmodel.Bytes(pk, costmodel.SymbolWidth))
		measP = append(measP, k)
		modelP = append(modelP, mk)
		fmt.Fprintf(w, "%6d %14.0f %14.0f\n", pl, k, mk)
	}
	_, devP, err := costmodel.FitScale(measP, modelP)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "fit deviation over p sweep: %.1f%%\n", devP*100)
	fmt.Fprintln(w, "SHAPE: responder traffic grows with m·q·n·p as the paper states")
	return nil
}

// runCostCategorical measures Section 4.3's O(n) per-holder cost.
func runCostCategorical(w io.Writer) error {
	fmt.Fprintln(w, "two holders, one categorical attribute")
	fmt.Fprintln(w, "paper: each holder sends O(n) encrypted values")
	fmt.Fprintln(w, "(fixed session overhead subtracted)")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%6s %14s %14s %14s\n", "n", "holder bytes", "model", "bytes/object")
	overhead, err := sessionOverhead(catParts, 2)
	if err != nil {
		return err
	}
	var meas, model []float64
	for _, n := range []int{64, 128, 256, 512} {
		parts, err := catParts([]int{n, n}, uint64(n))
		if err != nil {
			return err
		}
		out, err := runSession(parts, protocol.Batch)
		if err != nil {
			return err
		}
		j := minusOverhead(sentBy(out, "A", "B", "TP"), overhead)
		m := float64(costmodel.Bytes(costmodel.CategoricalElems(n), costmodel.TagWidth))
		meas = append(meas, j)
		model = append(model, m)
		fmt.Fprintf(w, "%6d %14.0f %14.0f %14.1f\n", n, j, m, j/float64(n))
	}
	_, dev, err := costmodel.FitScale(meas, model)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nfit deviation: %.1f%% — linear in n, as analyzed\n", dev*100)
	return nil
}

// runCostAtallah compares this implementation's alphanumeric traffic with
// the homomorphic edit-distance model of Atallah et al. [8].
func runCostAtallah(w io.Writer) error {
	fmt.Fprintln(w, "total cross-site comparison traffic for n = m strings of p = q = 20 symbols")
	fmt.Fprintln(w, "[8] modeled as 3 Paillier-1024 ciphertexts per DP cell (optimistic for [8])")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%6s %16s %18s %10s\n", "n=m", "ours (bytes)", "Atallah [8] (bytes)", "ratio")
	for _, n := range []int{10, 50, 100, 500} {
		ours := costmodel.OursAlphaTotalBytes(n, 20, n, 20)
		theirs := costmodel.DefaultAtallah.TotalBytes(n, 20, n, 20)
		fmt.Fprintf(w, "%6d %16d %18d %9.0fx\n", n, ours, theirs, float64(theirs)/float64(ours))
	}
	fmt.Fprintln(w, "\nSHAPE: the paper's claim that [8] is \"not feasible for clustering private")
	fmt.Fprintln(w, "data due to high communication costs\" holds at every scale (~200x here);")
	fmt.Fprintln(w, "note both grow as n²·p·q — the gap is the constant per compared cell")
	return nil
}
