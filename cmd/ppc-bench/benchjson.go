// The -json flag turns ppc-bench into a machine-readable perf-regression
// harness: it runs the performance-critical benchmark families under
// testing.Benchmark and writes ns/op, allocs/op and bytes/op per family
// to a JSON file (BENCH_1.json by convention), so future changes can be
// checked against the recorded trajectory.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"testing"

	"ppclust/internal/alphabet"
	"ppclust/internal/dissim"
	"ppclust/internal/editdist"
	"ppclust/internal/protocol"
	"ppclust/internal/rng"
)

// benchResult is one family's measurement.
type benchResult struct {
	Family    string  `json:"family"`
	N         int     `json:"n"`
	Iters     int     `json:"iters"`
	NsPerOp   float64 `json:"ns_per_op"`
	AllocsOp  int64   `json:"allocs_per_op"`
	BytesOp   int64   `json:"bytes_per_op"`
	GoMaxProc int     `json:"gomaxprocs"`
}

// benchFamilies are the hot paths the perf trajectory tracks: the numeric
// comparison protocol (serial engine vs all-core engine), the third
// party's edit-distance DP, local matrix construction and the
// merge+normalize pipeline.
func benchFamilies() []struct {
	name string
	n    int
	fn   func(b *testing.B)
} {
	const n = 256
	seedJK := rng.SeedFromUint64(1)
	seedJT := rng.SeedFromUint64(2)
	xs := make([]int64, n)
	ys := make([]int64, n)
	for i := range xs {
		xs[i], ys[i] = int64(i%1000), int64((3*i)%1000)
	}
	numericRound := func(b *testing.B, workers int) {
		eng := protocol.NewEngine(workers)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			d, err := eng.NumericInitiatorInt(xs, rng.NewAESCTR(seedJK), rng.NewAESCTR(seedJT), protocol.DefaultIntParams, protocol.Batch, 0)
			if err != nil {
				b.Fatal(err)
			}
			s, err := eng.NumericResponderInt(d, ys, rng.NewAESCTR(seedJK), protocol.DefaultIntParams, protocol.Batch)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := eng.NumericThirdPartyInt(s, rng.NewAESCTR(seedJT), protocol.DefaultIntParams, protocol.Batch); err != nil {
				b.Fatal(err)
			}
		}
	}

	st := rng.NewXoshiro(rng.SeedFromUint64(8))
	strs := make([][]alphabet.Symbol, n)
	for i := range strs {
		strs[i] = make([]alphabet.Symbol, 24)
		for j := range strs[i] {
			strs[i][j] = alphabet.Symbol(rng.Symbol(st, 4))
		}
	}
	localEdit := func(b *testing.B, workers int) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dissim.FromLocalPar(n, workers, func(int) func(i, j int) float64 {
				sc := editdist.MustUnitScratch()
				return func(i, j int) float64 {
					return float64(sc.Distance(strs[i], strs[j]))
				}
			})
		}
	}

	ccm := editdist.BuildCCM(strs[0], strs[1])
	col := make([]float64, n)
	for i := range col {
		col[i] = float64(i % 97)
	}
	numDist := func(i, j int) float64 {
		d := col[i] - col[j]
		if d < 0 {
			d = -d
		}
		return d
	}
	ms := []*dissim.Matrix{
		dissim.FromLocal(n, numDist),
		dissim.FromLocal(n, func(i, j int) float64 { return numDist(i, j) + 1 }),
	}
	weights := []float64{1, 2}
	mergeNorm := func(b *testing.B, workers int) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m, err := dissim.WeightedMergePar(ms, weights, workers)
			if err != nil {
				b.Fatal(err)
			}
			m.NormalizePar(workers)
		}
	}

	return []struct {
		name string
		n    int
		fn   func(b *testing.B)
	}{
		{"numeric-batch/serial", n, func(b *testing.B) { numericRound(b, 1) }},
		{"numeric-batch/parallel", n, func(b *testing.B) { numericRound(b, 0) }},
		{"editdist-ccm-scratch", 24, func(b *testing.B) {
			sc := editdist.MustUnitScratch()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sc.FromCCM(ccm)
			}
		}},
		{"local-editdist/serial", n, func(b *testing.B) { localEdit(b, 1) }},
		{"local-editdist/parallel", n, func(b *testing.B) { localEdit(b, 0) }},
		{"merge-normalize/serial", n, func(b *testing.B) { mergeNorm(b, 1) }},
		{"merge-normalize/parallel", n, func(b *testing.B) { mergeNorm(b, 0) }},
	}
}

// runBenchJSON measures every family and writes the JSON report to path.
func runBenchJSON(w io.Writer, path string) error {
	var results []benchResult
	for _, fam := range benchFamilies() {
		r := testing.Benchmark(fam.fn)
		res := benchResult{
			Family:    fam.name,
			N:         fam.n,
			Iters:     r.N,
			NsPerOp:   float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsOp:  r.AllocsPerOp(),
			BytesOp:   r.AllocedBytesPerOp(),
			GoMaxProc: gomaxprocs(),
		}
		results = append(results, res)
		fmt.Fprintf(w, "%-28s %12.0f ns/op %8d allocs/op %10d B/op\n",
			res.Family, res.NsPerOp, res.AllocsOp, res.BytesOp)
	}
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", path)
	return nil
}
