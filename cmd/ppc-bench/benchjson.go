// The -json flag turns ppc-bench into a machine-readable perf-regression
// harness: it runs the performance-critical benchmark families under
// testing.Benchmark and writes ns/op, allocs/op and bytes/op per family
// to a JSON file (BENCH_1.json by convention), so future changes can be
// checked against the recorded trajectory.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ppclust/internal/alphabet"
	"ppclust/internal/dataset"
	"ppclust/internal/dissim"
	"ppclust/internal/editdist"
	"ppclust/internal/hcluster"
	"ppclust/internal/netid"
	"ppclust/internal/pam"
	"ppclust/internal/party"
	"ppclust/internal/protocol"
	"ppclust/internal/rng"
	"ppclust/internal/server"
	"ppclust/internal/wire"
)

// numericBatchColumns builds the two deterministic integer columns of the
// numeric-batch family.
func numericBatchColumns(n int) (xs, ys []int64) {
	xs, ys = make([]int64, n), make([]int64, n)
	for i := range xs {
		xs[i], ys[i] = int64(i%1000), int64((3*i)%1000)
	}
	return xs, ys
}

// numericBatchRound runs one full initiator → responder → third-party
// round of the batch-mode integer protocol — the exact op the
// numeric-batch family times, shared with the allocs-per-op regression
// test so the test gates the same code path the trajectory records.
func numericBatchRound(eng *protocol.Engine, xs, ys []int64) error {
	seedJK := rng.SeedFromUint64(1)
	seedJT := rng.SeedFromUint64(2)
	d, err := eng.NumericInitiatorInt(xs, rng.NewAESCTR(seedJK), rng.NewAESCTR(seedJT), protocol.DefaultIntParams, protocol.Batch, 0)
	if err != nil {
		return err
	}
	s, err := eng.NumericResponderInt(d, ys, rng.NewAESCTR(seedJK), protocol.DefaultIntParams, protocol.Batch)
	if err != nil {
		return err
	}
	_, err = eng.NumericThirdPartyInt(s, rng.NewAESCTR(seedJT), protocol.DefaultIntParams, protocol.Batch)
	return err
}

// benchResult is one family's measurement.
type benchResult struct {
	Family    string  `json:"family"`
	N         int     `json:"n"`
	Iters     int     `json:"iters"`
	NsPerOp   float64 `json:"ns_per_op"`
	AllocsOp  int64   `json:"allocs_per_op"`
	BytesOp   int64   `json:"bytes_per_op"`
	GoMaxProc int     `json:"gomaxprocs"`
	// P99Ns and SessionsPerSec are reported by the session-multitenant
	// family only: tail per-session latency and aggregate throughput.
	P99Ns          float64 `json:"p99_ns,omitempty"`
	SessionsPerSec float64 `json:"sessions_per_sec,omitempty"`
	// ShardPeakBytes is reported by the session-sharded family only: the
	// largest per-shard condensed-matrix slice, which drops ~1/K as the
	// row-range partition widens.
	ShardPeakBytes float64 `json:"shard_peak_bytes,omitempty"`
}

// benchFamilies are the hot paths the perf trajectory tracks: the numeric
// comparison protocol (serial engine vs all-core engine), the third
// party's edit-distance DP, local matrix construction, the
// merge+normalize pipeline, since PR 2 the clustering backend
// (MST/NN-chain engines vs the retained generic reference at n=500) and
// the FastPAM1-backed PAM at the swap-round scale (n=512, k=8), since
// PR 3 the session-pipeline family (a whole session over
// latency-injecting TP links, phase-serial third party vs the pipelined
// session engine; n is the global object count), since PR 4 the
// session-stream family: one big-triangle attribute over
// bandwidth-limited store-and-forward links, sweeping the local-matrix
// chunk size against the monolithic wire shape, since PR 5 its
// both-large rows, where equal partitions make the pairwise S matrix the
// dominant payload and the chunked pairwise streaming the lever, and
// since PR 7 the session-multitenant family: the same total workload as N
// concurrent tenant sessions on the multi-tenant server vs one big
// session, reporting p99 per-session latency and sessions/sec, and since
// PR 8 the session-sharded family: the both-large session with the third
// party split into K row-range shards behind the merge coordinator,
// reporting the widest per-shard triangle slice alongside wall time, and
// since PR 9 the session-reconnect family: the equal-partition session
// over the same 1 ms / 64 MB/s TP links, measuring the fault-free cost of
// arming the mid-session resume layer (replay cache + watermarks) against
// the unarmed baseline, and the wall-time cost of a session whose
// holder→TP lane flaps mid-stream and recovers through watermarked replay.
// Since PR 10 the session-shardproc family prices the cross-process worker
// protocol: the same sharded session with its K shard pipelines behind
// real localhost TCP links (v4 shard registration, AES-GCM worker
// channels) served by in-process shard workers, against the in-process
// sharded rows as the overhead baseline.
func benchFamilies() []struct {
	name string
	n    int
	fn   func(b *testing.B)
} {
	const n = 256
	xs, ys := numericBatchColumns(n)
	numericRound := func(b *testing.B, workers int) {
		eng := protocol.NewEngine(workers)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := numericBatchRound(eng, xs, ys); err != nil {
				b.Fatal(err)
			}
		}
	}

	st := rng.NewXoshiro(rng.SeedFromUint64(8))
	strs := make([][]alphabet.Symbol, n)
	for i := range strs {
		strs[i] = make([]alphabet.Symbol, 24)
		for j := range strs[i] {
			strs[i][j] = alphabet.Symbol(rng.Symbol(st, 4))
		}
	}
	localEdit := func(b *testing.B, workers int) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dissim.FromLocalPar(n, workers, func(int) func(i, j int) float64 {
				sc := editdist.MustUnitScratch()
				return func(i, j int) float64 {
					return float64(sc.Distance(strs[i], strs[j]))
				}
			})
		}
	}

	ccm := editdist.BuildCCM(strs[0], strs[1])
	col := make([]float64, n)
	for i := range col {
		col[i] = float64(i % 97)
	}
	numDist := func(i, j int) float64 {
		d := col[i] - col[j]
		if d < 0 {
			d = -d
		}
		return d
	}
	ms := []*dissim.Matrix{
		dissim.FromLocal(n, numDist),
		dissim.FromLocal(n, func(i, j int) float64 { return numDist(i, j) + 1 }),
	}
	weights := []float64{1, 2}
	mergeNorm := func(b *testing.B, workers int) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m, err := dissim.WeightedMergePar(ms, weights, workers)
			if err != nil {
				b.Fatal(err)
			}
			m.NormalizePar(workers)
		}
	}

	cs := rng.NewXoshiro(rng.SeedFromUint64(2))
	cm := dissim.New(500)
	for i := 1; i < 500; i++ {
		for j := 0; j < i; j++ {
			cm.Set(i, j, rng.Float64(cs)+0.01)
		}
	}
	cluster := func(b *testing.B, link hcluster.Linkage, algo hcluster.Algorithm, workers int) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := hcluster.ClusterOpt(cm, link, hcluster.ClusterOptions{Algorithm: algo, Workers: workers}); err != nil {
				b.Fatal(err)
			}
		}
	}
	// Silhouette is the clustering-stage family whose parallel variant
	// genuinely fans out at n=500 (per-object O(n) scans, not grain-gated
	// like the per-merge row updates), so it is the row that demonstrates
	// multi-core speedup for the clustering stage on multi-core sweeps.
	silLabels := make([]int, 500)
	for i := range silLabels {
		silLabels[i] = i % 4
	}
	silhouette := func(b *testing.B, workers int) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := hcluster.SilhouettePar(cm, silLabels, workers); err != nil {
				b.Fatal(err)
			}
		}
	}
	ps := rng.NewXoshiro(rng.SeedFromUint64(42))
	pm := dissim.New(512)
	for i := 1; i < 512; i++ {
		for j := 0; j < i; j++ {
			pm.Set(i, j, rng.Float64(ps)+0.01)
		}
	}
	pamRun := func(b *testing.B, workers int) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := pam.Cluster(pm, 8, rng.NewXoshiro(rng.SeedFromUint64(7)), pam.Config{Workers: workers}); err != nil {
				b.Fatal(err)
			}
		}
	}

	// session-pipeline: a full 3-holder mixed-attribute session whose
	// TP links carry 1ms (+0.5ms jitter) of per-frame receive latency —
	// the WAN shape the pipelined session engine exists for. The serial
	// row is the phase-serial reference third party (Config.SerialTP);
	// the pipelined row overlaps attribute assembly with wire I/O.
	// Reports are bit-identical between the two (pinned by
	// internal/party's differential tests); only wall-clock may differ.
	sessSchema := dataset.Schema{Attrs: []dataset.Attribute{
		{Name: "age", Type: dataset.Numeric},
		{Name: "income", Type: dataset.Numeric},
		{Name: "seq", Type: dataset.Alphanumeric, Alphabet: alphabet.DNA},
		{Name: "city", Type: dataset.Categorical},
	}}
	ss := rng.NewXoshiro(rng.SeedFromUint64(31))
	var sessParts []dataset.Partition
	for pi, site := range []string{"A", "B", "C"} {
		tab := dataset.MustNewTable(sessSchema)
		for r := 0; r < 24+pi; r++ {
			dna := make([]byte, 8)
			for i := range dna {
				dna[i] = "ACGT"[rng.Symbol(ss, 4)]
			}
			tab.MustAppendRow(float64(rng.Symbol(ss, 80)), float64(rng.Symbol(ss, 5000)),
				string(dna), fmt.Sprintf("c%d", rng.Symbol(ss, 4)))
		}
		sessParts = append(sessParts, dataset.Partition{Site: site, Table: tab})
	}
	sessionPipeline := func(b *testing.B, serial bool) {
		cfg := party.Config{Schema: sessSchema, Variant: party.Float64Variant, SerialTP: serial}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			// Fresh seed counter per session: both family rows and every
			// iteration see the identical per-link jitter schedule, so
			// serial vs pipelined differ only in the engine under test.
			latencySeed := uint64(0)
			tpLatency := func(owner, peer string, c wire.Conduit) wire.Conduit {
				if owner != party.TPName {
					return c
				}
				latencySeed++
				return wire.Latency(c, time.Millisecond, time.Millisecond/2, latencySeed)
			}
			if _, err := party.RunInMemoryWrapped(cfg, sessParts, nil, detRandom, tpLatency); err != nil {
				b.Fatal(err)
			}
		}
	}

	// session-stream: a lopsided two-holder session with one large numeric
	// attribute (n=1200 objects at the big holder, ~6 MB of packed
	// triangle on the wire) whose TP links are store-and-forward 1 ms /
	// 64 MB/s bottlenecks (wire.Link). With a single comparison attribute
	// the PR 3 pipeline has no neighboring attribute to overlap with, so
	// its monolithic local frame serializes holder encode → transfer →
	// TP decode+install; the chunked rows sweep the LocalChunkBytes knob
	// and overlap all three inside the transfer window. Reports are
	// bit-identical across every row (pinned by internal/party's
	// differential tests); only wall-clock and allocation shape differ.
	streamSchema := dataset.Schema{Attrs: []dataset.Attribute{{Name: "x", Type: dataset.Numeric}}}
	var streamParts []dataset.Partition
	for pi, spec := range []struct {
		site string
		rows int
	}{{"A", 1200}, {"B", 6}} {
		tab := dataset.MustNewTable(streamSchema)
		for r := 0; r < spec.rows; r++ {
			// Continuous values keep gob's float encoding at its realistic
			// ~9 bytes per cell.
			tab.MustAppendRow((float64(r*37+pi) + 0.125) * 1.000003)
		}
		streamParts = append(streamParts, dataset.Partition{Site: spec.site, Table: tab})
	}
	sessionStream := func(b *testing.B, parts []dataset.Partition, serial bool, chunkBytes int) {
		cfg := party.Config{Schema: streamSchema, Variant: party.Float64Variant, SerialTP: serial, LocalChunkBytes: chunkBytes}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			linkSeed := uint64(0)
			tpLink := func(owner, peer string, c wire.Conduit) wire.Conduit {
				if owner != party.TPName {
					return c
				}
				linkSeed++
				return wire.Link(c, time.Millisecond, 0, 64<<20, linkSeed)
			}
			if _, err := party.RunInMemoryWrapped(cfg, parts, nil, detRandom, tpLink); err != nil {
				b.Fatal(err)
			}
		}
	}

	// both-partitions-large: the same single-attribute session with equal
	// 600-object partitions, so the dominant payload is no longer a local
	// triangle but the responder→TP masked S matrix (600×600 cells) — the
	// message that stayed monolithic, and wire.MaxFrame-bound, until PR 5
	// chunked the pairwise protocol payloads. The mono row ships it as one
	// frame; the chunked rows stream it in the shared row-range schedule.
	var bothParts []dataset.Partition
	for pi, site := range []string{"A", "B"} {
		tab := dataset.MustNewTable(streamSchema)
		for r := 0; r < 600; r++ {
			tab.MustAppendRow((float64(r*41+pi) + 0.375) * 1.000007)
		}
		bothParts = append(bothParts, dataset.Partition{Site: site, Table: tab})
	}

	// session-multitenant: the same total workload (480 objects over TP
	// links with 1 ms propagation and a 64 MB/s bottleneck) sliced two
	// ways across the PR 7 multi-tenant server — four small tenant
	// sessions running concurrently under admission control vs one big
	// session. Besides ns/op the family reports per-session p99 wall time
	// and aggregate sessions/sec: tenancy amortizes link latency across
	// sessions and sidesteps the monolith's O(n²) triangle, at the price
	// of per-session overheads the 1-big row doesn't pay.
	multiTenant := func(b *testing.B, nSessions, rowsPerHolder int) {
		mtHolders := []string{"A", "B"}
		tables := map[string]*dataset.Table{}
		for pi, site := range mtHolders {
			tab := dataset.MustNewTable(streamSchema)
			for r := 0; r < rowsPerHolder; r++ {
				tab.MustAppendRow((float64(r*43+pi) + 0.5) * 1.000011)
			}
			tables[site] = tab
		}
		// The phase timeout is a safety net only: a wedged session fails
		// the benchmark descriptively instead of hanging the run.
		scfg := party.Config{Schema: streamSchema, Variant: party.Float64Variant, PhaseTimeout: 30 * time.Second}
		mgr, err := server.New(server.Config{
			Holders: mtHolders,
			Session: scfg,
			// Headroom above nSessions: a finished session's slot releases
			// an instant after its holders return, so the next iteration's
			// arrivals briefly overlap; the queue absorbs any remainder.
			MaxSessions: 2 * nSessions,
			QueueDepth:  4 * nSessions,
			Random:      func(session string) io.Reader { return detRandom(party.TPName) },
		})
		if err != nil {
			b.Fatal(err)
		}
		defer mgr.Close()
		var linkSeed atomic.Uint64
		runSession := func(id string) error {
			hA, tA := wire.Pipe()
			hB, tB := wire.Pipe()
			ab, ba := wire.Pipe()
			defer func() {
				for _, c := range []wire.Conduit{hA, hB, ab, ba} {
					c.Close()
				}
			}()
			link := func(c wire.Conduit) wire.Conduit {
				return wire.Link(c, time.Millisecond, 0, 64<<20, linkSeed.Add(1))
			}
			mgr.Submit(netid.Hello{Name: "A", Session: id, Version: netid.Version}, link(tA), nil)
			mgr.Submit(netid.Hello{Name: "B", Session: id, Version: netid.Version}, link(tB), nil)
			errs := make(chan error, 2)
			run := func(name, peer string, tp, hh wire.Conduit) {
				h, err := party.NewHolder(name, tables[name], mtHolders, scfg, party.ClusterRequest{K: 2},
					map[string]wire.Conduit{party.TPName: tp, peer: hh}, detRandom(name))
				if err != nil {
					errs <- err
					return
				}
				_, err = h.Run()
				errs <- err
			}
			go run("A", "B", hA, ab)
			go run("B", "A", hB, ba)
			if err := <-errs; err != nil {
				return err
			}
			return <-errs
		}
		b.ReportAllocs()
		var mu sync.Mutex
		var lat []time.Duration
		start := time.Now()
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			errCh := make(chan error, nSessions)
			for s := 0; s < nSessions; s++ {
				id := fmt.Sprintf("iter%d-s%d", i, s)
				wg.Add(1)
				go func(id string) {
					defer wg.Done()
					t0 := time.Now()
					if err := runSession(id); err != nil {
						errCh <- err
						return
					}
					mu.Lock()
					lat = append(lat, time.Since(t0))
					mu.Unlock()
				}(id)
			}
			wg.Wait()
			select {
			case err := <-errCh:
				b.Fatal(err)
			default:
			}
		}
		elapsed := time.Since(start)
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		if len(lat) > 0 {
			p99 := lat[(99*len(lat)+99)/100-1]
			b.ReportMetric(float64(p99.Nanoseconds()), "p99-ns")
		}
		if sec := elapsed.Seconds(); sec > 0 {
			b.ReportMetric(float64(nSessions*b.N)/sec, "sessions/sec")
		}
	}

	// session-sharded: the both-large session (equal 600-object
	// partitions, responder→TP S matrix dominant) with the third party
	// split into K row-range shards, every TP-side lane — control and
	// shard — behind the same 1 ms / 64 MB/s store-and-forward link. K=1
	// is the degenerate coordinator and must match the single-TP rows;
	// K=2 and K=4 drain the triangle over parallel lanes. Reports are
	// bit-identical at every K (pinned by internal/party's differential
	// tests). Besides ns/op the family reports the widest per-shard
	// condensed-triangle slice, which falls ~1/K as the partition widens.
	sessionSharded := func(b *testing.B, k int) {
		cfg := party.Config{Schema: streamSchema, Variant: party.Float64Variant, TPShards: k}
		tpEnd := func(s string) bool {
			return s == party.TPName || strings.HasPrefix(s, party.TPName+"#")
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			linkSeed := uint64(0)
			tpLink := func(owner, peer string, c wire.Conduit) wire.Conduit {
				if !tpEnd(owner) && !tpEnd(peer) {
					return c
				}
				linkSeed++
				return wire.Link(c, time.Millisecond, 0, 64<<20, linkSeed)
			}
			if _, err := party.RunInMemoryWrapped(cfg, bothParts, nil, detRandom, tpLink); err != nil {
				b.Fatal(err)
			}
		}
		peak := 0
		for _, r := range dissim.ShardRanges(1200, k) {
			if cells := r[1]*(r[1]-1)/2 - r[0]*(r[0]-1)/2; 8*cells > peak {
				peak = 8 * cells
			}
		}
		b.ReportMetric(float64(peak), "shard-peak-bytes")
	}

	// session-shardproc: the session-sharded workload with its K shard
	// pipelines running behind the cross-process worker protocol — the
	// coordinator dials each shard over real localhost TCP, registers
	// with the v4 shard hello and relays holder frames over an AES-GCM
	// worker channel. The workers are in-process party.ShardServers, so
	// the rows price the control protocol and the extra encrypt/relay
	// hop, not subprocess spawn noise. Holder-visible lanes carry the
	// same 1 ms / 64 MB/s links as session-sharded, making the delta
	// against those rows the worker-relay overhead. Reports stay
	// bit-identical to every other family row at the same n (pinned by
	// internal/party's and internal/proctest's differential tests).
	sessionShardProc := func(b *testing.B, k int) {
		srv, err := party.NewShardServer(party.ShardServerConfig{Schema: streamSchema})
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		go srv.Serve(ln)
		addr := ln.Addr().String()
		dial := func(session string) party.ShardDialFunc {
			return func(ctx context.Context, shard int, state party.ResumeState) (wire.Conduit, party.ResumeGrant, error) {
				var d net.Dialer
				conn, err := d.DialContext(ctx, "tcp", addr)
				if err != nil {
					return nil, party.ResumeGrant{}, err
				}
				if err := netid.AnnounceShardRegistrationWithin(conn, party.TPName, session, shard,
					state.Epoch, state.Sent, state.Recv, 10*time.Second); err != nil {
					conn.Close()
					return nil, party.ResumeGrant{}, err
				}
				sent, recv, err := netid.AwaitResumeGrant(conn, 10*time.Second)
				if err != nil {
					conn.Close()
					return nil, party.ResumeGrant{}, err
				}
				return wire.TCPPooled(conn), party.ResumeGrant{Sent: sent, Recv: recv}, nil
			}
		}
		tpEnd := func(s string) bool {
			return s == party.TPName || strings.HasPrefix(s, party.TPName+"#")
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cfg := party.Config{Schema: streamSchema, Variant: party.Float64Variant, TPShards: k,
				ShardDial: dial(fmt.Sprintf("bench-shardproc-%d-%d", k, i))}
			linkSeed := uint64(0)
			tpLink := func(owner, peer string, c wire.Conduit) wire.Conduit {
				if !tpEnd(owner) && !tpEnd(peer) {
					return c
				}
				linkSeed++
				return wire.Link(c, time.Millisecond, 0, 64<<20, linkSeed)
			}
			if _, err := party.RunInMemoryWrapped(cfg, bothParts, nil, detRandom, tpLink); err != nil {
				b.Fatal(err)
			}
		}
	}

	// session-reconnect: equal 200-object partitions over the usual
	// 1 ms / 64 MB/s TP links. baseline runs unarmed; armed prices the
	// resume layer's replay cache and watermark accounting on a fault-free
	// run (the steady-state cost of -reconnect-window); flap-recover cuts
	// holder B's TP lane at its 6th transport frame — mid-stream — and
	// includes the redial, watermark exchange and replay in the measured
	// wall time. Reports are bit-identical across all three rows (pinned
	// by internal/party's differential reconnect tests).
	var reconParts []dataset.Partition
	for pi, site := range []string{"A", "B"} {
		tab := dataset.MustNewTable(streamSchema)
		for r := 0; r < 200; r++ {
			tab.MustAppendRow((float64(r*37+pi) + 0.25) * 1.000003)
		}
		reconParts = append(reconParts, dataset.Partition{Site: site, Table: tab})
	}
	sessionReconnect := func(b *testing.B, window time.Duration, flap bool) {
		cfg := party.Config{Schema: streamSchema, Variant: party.Float64Variant, ResumeWindow: window}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			linkSeed := uint64(0)
			var flapped atomic.Bool
			wrap := func(owner, peer string, c wire.Conduit) wire.Conduit {
				if owner == party.TPName {
					linkSeed++
					c = wire.Link(c, time.Millisecond, 0, 64<<20, linkSeed)
				}
				// Only the first conduit instance of B's TP lane carries the
				// fault; the redialed replacement must flow clean.
				if flap && owner == "B" && peer == party.TPName && flapped.CompareAndSwap(false, true) {
					c = wire.Fault(c, wire.FaultSpec{Kind: wire.FaultFlap, Frame: 6})
				}
				return c
			}
			if _, err := party.RunInMemoryWrapped(cfg, reconParts, nil, detRandom, wrap); err != nil {
				b.Fatal(err)
			}
		}
	}

	return []struct {
		name string
		n    int
		fn   func(b *testing.B)
	}{
		{"numeric-batch/serial", n, func(b *testing.B) { numericRound(b, 1) }},
		{"numeric-batch/parallel", n, func(b *testing.B) { numericRound(b, 0) }},
		{"hcluster-single/serial", 500, func(b *testing.B) { cluster(b, hcluster.Single, hcluster.AlgoAuto, 1) }},
		{"hcluster-single/parallel", 500, func(b *testing.B) { cluster(b, hcluster.Single, hcluster.AlgoAuto, 0) }},
		{"hcluster-single/reference", 500, func(b *testing.B) { cluster(b, hcluster.Single, hcluster.AlgoGeneric, 1) }},
		{"hcluster-average/serial", 500, func(b *testing.B) { cluster(b, hcluster.Average, hcluster.AlgoAuto, 1) }},
		{"hcluster-average/parallel", 500, func(b *testing.B) { cluster(b, hcluster.Average, hcluster.AlgoAuto, 0) }},
		{"hcluster-silhouette/serial", 500, func(b *testing.B) { silhouette(b, 1) }},
		{"hcluster-silhouette/parallel", 500, func(b *testing.B) { silhouette(b, 0) }},
		{"pam-swap/serial", 512, func(b *testing.B) { pamRun(b, 1) }},
		{"pam-swap/parallel", 512, func(b *testing.B) { pamRun(b, 0) }},
		{"session-pipeline/serial", 75, func(b *testing.B) { sessionPipeline(b, true) }},
		{"session-pipeline/pipelined", 75, func(b *testing.B) { sessionPipeline(b, false) }},
		{"session-stream/serial", 1206, func(b *testing.B) { sessionStream(b, streamParts, true, -1) }},
		{"session-stream/pipelined-mono", 1206, func(b *testing.B) { sessionStream(b, streamParts, false, -1) }},
		{"session-stream/chunk-256k", 1206, func(b *testing.B) { sessionStream(b, streamParts, false, 256<<10) }},
		{"session-stream/chunk-64k", 1206, func(b *testing.B) { sessionStream(b, streamParts, false, 64<<10) }},
		{"session-stream/chunk-4k", 1206, func(b *testing.B) { sessionStream(b, streamParts, false, 4<<10) }},
		{"session-stream/both-large-serial", 1200, func(b *testing.B) { sessionStream(b, bothParts, true, -1) }},
		{"session-stream/both-large-mono", 1200, func(b *testing.B) { sessionStream(b, bothParts, false, -1) }},
		{"session-stream/both-large-chunk-256k", 1200, func(b *testing.B) { sessionStream(b, bothParts, false, 256<<10) }},
		{"session-stream/both-large-chunk-64k", 1200, func(b *testing.B) { sessionStream(b, bothParts, false, 64<<10) }},
		{"session-multitenant/4x120", 480, func(b *testing.B) { multiTenant(b, 4, 60) }},
		{"session-multitenant/1x480", 480, func(b *testing.B) { multiTenant(b, 1, 240) }},
		{"session-sharded/shards-1", 1200, func(b *testing.B) { sessionSharded(b, 1) }},
		{"session-sharded/shards-2", 1200, func(b *testing.B) { sessionSharded(b, 2) }},
		{"session-sharded/shards-4", 1200, func(b *testing.B) { sessionSharded(b, 4) }},
		{"session-shardproc/workers-2", 1200, func(b *testing.B) { sessionShardProc(b, 2) }},
		{"session-shardproc/workers-4", 1200, func(b *testing.B) { sessionShardProc(b, 4) }},
		{"session-reconnect/baseline", 400, func(b *testing.B) { sessionReconnect(b, 0, false) }},
		{"session-reconnect/armed", 400, func(b *testing.B) { sessionReconnect(b, 10*time.Second, false) }},
		{"session-reconnect/flap-recover", 400, func(b *testing.B) { sessionReconnect(b, 10*time.Second, true) }},
		{"editdist-ccm-scratch", 24, func(b *testing.B) {
			sc := editdist.MustUnitScratch()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sc.FromCCM(ccm)
			}
		}},
		{"local-editdist/serial", n, func(b *testing.B) { localEdit(b, 1) }},
		{"local-editdist/parallel", n, func(b *testing.B) { localEdit(b, 0) }},
		{"merge-normalize/serial", n, func(b *testing.B) { mergeNorm(b, 1) }},
		{"merge-normalize/parallel", n, func(b *testing.B) { mergeNorm(b, 0) }},
	}
}

// runBenchJSON measures every family at each GOMAXPROCS setting and
// writes the JSON report to path. Families run once pinned to a single
// core (the serial trajectory every report has tracked) and once at the
// machine's full core count, so the parallel variants demonstrate — and
// regress against — actual multi-core speedup rather than a one-core
// schedule. On a single-core machine the two settings coincide and only
// one sweep runs.
func runBenchJSON(w io.Writer, path string) error {
	// "All cores" is the operator's effective setting (GOMAXPROCS env or
	// cgroup-aware default), not the raw host count — NumCPU would
	// oversubscribe a quota-limited container and record throttled noise.
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	sweep := []int{1}
	if prev > 1 {
		sweep = append(sweep, prev)
	}
	var results []benchResult
	for _, gmp := range sweep {
		runtime.GOMAXPROCS(gmp)
		fmt.Fprintf(w, "GOMAXPROCS=%d\n", gmp)
		for _, fam := range benchFamilies() {
			r := testing.Benchmark(fam.fn)
			res := benchResult{
				Family:         fam.name,
				N:              fam.n,
				Iters:          r.N,
				NsPerOp:        float64(r.T.Nanoseconds()) / float64(r.N),
				AllocsOp:       r.AllocsPerOp(),
				BytesOp:        r.AllocedBytesPerOp(),
				GoMaxProc:      gmp,
				P99Ns:          r.Extra["p99-ns"],
				SessionsPerSec: r.Extra["sessions/sec"],
				ShardPeakBytes: r.Extra["shard-peak-bytes"],
			}
			results = append(results, res)
			fmt.Fprintf(w, "%-28s %12.0f ns/op %8d allocs/op %10d B/op\n",
				res.Family, res.NsPerOp, res.AllocsOp, res.BytesOp)
		}
	}
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", path)
	return nil
}
