package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"

	"ppclust/internal/protocol"
)

// readRecordedAllocs pulls one family's recorded allocs/op out of a
// committed BENCH_*.json report.
func readRecordedAllocs(t *testing.T, path, family string, gomaxprocs int) int64 {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading %s: %v", path, err)
	}
	var results []benchResult
	if err := json.Unmarshal(data, &results); err != nil {
		t.Fatalf("parsing %s: %v", path, err)
	}
	for _, r := range results {
		if r.Family == family && r.GoMaxProc == gomaxprocs {
			return r.AllocsOp
		}
	}
	t.Fatalf("family %q (GOMAXPROCS=%d) not recorded in %s", family, gomaxprocs, path)
	return 0
}

// TestNumericBatchAllocsRegression gates the numeric-batch/serial hot path
// against the allocation trajectory recorded in BENCH_3.json: the pooled
// zero-copy framing work must not creep allocations back into the protocol
// round. The budget is the recorded value plus 20% headroom, so legitimate
// small shifts don't flake while a lost scratch buffer (which would add
// O(n) or O(n²) allocs) fails loudly.
func TestNumericBatchAllocsRegression(t *testing.T) {
	recorded := readRecordedAllocs(t, "../../BENCH_3.json", "numeric-batch/serial", 1)
	xs, ys := numericBatchColumns(256)
	eng := protocol.NewEngine(1)
	// One warm-up round primes the engine's reusable scratch, matching the
	// steady state testing.Benchmark records.
	if err := numericBatchRound(eng, xs, ys); err != nil {
		t.Fatal(err)
	}
	got := testing.AllocsPerRun(20, func() {
		if err := numericBatchRound(eng, xs, ys); err != nil {
			t.Fatal(err)
		}
	})
	budget := float64(recorded) * 1.2
	if got > budget {
		t.Fatalf("numeric-batch/serial round costs %.1f allocs/op; recorded %d, budget %.1f (+20%%)",
			got, recorded, budget)
	}
}

// BenchmarkSessionMultiTenant exposes the session-multitenant family rows
// to `go test -bench`, so the CI bench smoke (1 iteration) exercises the
// multi-tenant server path — admission, concurrent tenant sessions over
// shaped links, and slot recycling — and fails loudly if it regresses.
func BenchmarkSessionMultiTenant(b *testing.B) {
	for _, fam := range benchFamilies() {
		if !strings.HasPrefix(fam.name, "session-multitenant/") {
			continue
		}
		b.Run(strings.TrimPrefix(fam.name, "session-multitenant/"), fam.fn)
	}
}
