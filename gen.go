package ppclust

import (
	"ppclust/internal/gen"
	"ppclust/internal/rng"
)

// Workload generation, re-exported for examples, benchmarks and downstream
// experimentation. All generators are deterministic in their seed.

type (
	// LabeledData couples a generated table with ground-truth labels.
	LabeledData = gen.Labeled
	// GaussianCluster describes one numeric mixture component.
	GaussianCluster = gen.GaussianCluster
	// DNASpec configures GenDNAFamilies.
	DNASpec = gen.DNASpec
)

func seeded(seed uint64) rng.Stream { return rng.NewAESCTR(rng.SeedFromUint64(seed)) }

// GenGaussians samples a numeric table from a Gaussian mixture.
func GenGaussians(clusters []GaussianCluster, seed uint64, names ...string) (*LabeledData, error) {
	return gen.Gaussians(clusters, seeded(seed), names...)
}

// GenRings samples two concentric 2-D rings — the non-spherical workload of
// the hierarchical-vs-k-means experiments.
func GenRings(nInner, nOuter int, rInner, rOuter, noise float64, seed uint64) (*LabeledData, error) {
	return gen.Rings(nInner, nOuter, rInner, rOuter, noise, seeded(seed))
}

// GenDNAFamilies generates families of sequences descended from mutated
// ancestors — the paper's bird-flu motivation.
func GenDNAFamilies(spec DNASpec, seed uint64) (*LabeledData, error) {
	return gen.DNAFamilies(spec, seeded(seed))
}

// GenCategorical generates clustered categorical data.
func GenCategorical(clusters, perCluster, attrs, paletteSize int, fidelity float64, seed uint64) (*LabeledData, error) {
	return gen.CategoricalClusters(clusters, perCluster, attrs, paletteSize, fidelity, seeded(seed))
}

// SplitRoundRobin partitions labeled data over k sites ("A", "B", …) in
// row order, returning the partitions and the truth labels permuted into
// global order.
func SplitRoundRobin(l *LabeledData, k int) ([]Partition, []int, error) {
	return gen.Partition(l, k, gen.AssignRoundRobin(l.Table.Len(), k))
}

// SplitRandom partitions labeled data over k sites uniformly at random
// (deterministic in seed).
func SplitRandom(l *LabeledData, k int, seed uint64) ([]Partition, []int, error) {
	return gen.Partition(l, k, gen.AssignRandom(l.Table.Len(), k, seeded(seed)))
}
