// Experiment-verification tests: each asserts the *shape* of one paper
// claim (communication growth, attack outcome, clustering comparison), as
// indexed in EXPERIMENTS.md. The worked examples E1/E3 are pinned in
// internal/protocol; end-to-end accuracy E9 in internal/party and
// ppclust_test.go.
package ppclust_test

import (
	"fmt"
	"testing"

	"ppclust"
	"ppclust/internal/costmodel"
	"ppclust/internal/dataset"
	"ppclust/internal/dissim"
	"ppclust/internal/hcluster"
	"ppclust/internal/kmeans"
	"ppclust/internal/party"
	"ppclust/internal/rng"
)

// expNumericParts builds two single-numeric-attribute holders of size n.
func expNumericParts(t *testing.T, n int, seed uint64) []dataset.Partition {
	t.Helper()
	schema := dataset.Schema{Attrs: []dataset.Attribute{{Name: "x", Type: dataset.Numeric}}}
	s := rng.NewXoshiro(rng.SeedFromUint64(seed))
	parts := make([]dataset.Partition, 2)
	for i, site := range []string{"A", "B"} {
		tab := dataset.MustNewTable(schema)
		for r := 0; r < n; r++ {
			tab.MustAppendRow(rng.Float64(s) * 1000)
		}
		parts[i] = dataset.Partition{Site: site, Table: tab}
	}
	return parts
}

func expAlphaParts(t *testing.T, n, p int, seed uint64) []dataset.Partition {
	t.Helper()
	schema := dataset.Schema{Attrs: []dataset.Attribute{
		{Name: "seq", Type: dataset.Alphanumeric, Alphabet: ppclust.DNA},
	}}
	s := rng.NewXoshiro(rng.SeedFromUint64(seed))
	parts := make([]dataset.Partition, 2)
	for i, site := range []string{"A", "B"} {
		tab := dataset.MustNewTable(schema)
		for r := 0; r < n; r++ {
			buf := make([]rune, p)
			for c := range buf {
				buf[c] = []rune("ACGT")[rng.Symbol(s, 4)]
			}
			tab.MustAppendRow(string(buf))
		}
		parts[i] = dataset.Partition{Site: site, Table: tab}
	}
	return parts
}

func expCatParts(t *testing.T, n int, seed uint64) []dataset.Partition {
	t.Helper()
	schema := dataset.Schema{Attrs: []dataset.Attribute{{Name: "c", Type: dataset.Categorical}}}
	s := rng.NewXoshiro(rng.SeedFromUint64(seed))
	parts := make([]dataset.Partition, 2)
	for i, site := range []string{"A", "B"} {
		tab := dataset.MustNewTable(schema)
		for r := 0; r < n; r++ {
			tab.MustAppendRow(fmt.Sprintf("v%d", rng.Symbol(s, 8)))
		}
		parts[i] = dataset.Partition{Site: site, Table: tab}
	}
	return parts
}

func runExpSession(t *testing.T, parts []dataset.Partition) *party.SessionOutcome {
	t.Helper()
	out, err := party.RunInMemory(party.Config{
		Schema:  parts[0].Table.Schema(),
		Variant: party.Float64Variant,
	}, parts, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func holderSent(out *party.SessionOutcome, name string, peers ...string) float64 {
	total := uint64(0)
	for _, p := range peers {
		b, _ := out.Traffic[party.LinkName(name, p)].Sent()
		total += b
	}
	return float64(total)
}

// TestNumericCommunicationCosts is E6: measured traffic follows the paper's
// O(n²+n) (initiator) and O(m²+m·n) (responder) — the quadratic model fits
// far better than a linear one.
func TestNumericCommunicationCosts(t *testing.T) {
	sizes := []int{32, 64, 128, 256}
	var measJ, measK, model, linear []float64
	// Fixed overhead measured on an empty session.
	empty := runExpSession(t, expNumericParts(t, 0, 0))
	ovJ := holderSent(empty, "A", "B", party.TPName)
	ovK := holderSent(empty, "B", "A", party.TPName)
	for _, n := range sizes {
		out := runExpSession(t, expNumericParts(t, n, uint64(n)))
		measJ = append(measJ, holderSent(out, "A", "B", party.TPName)-ovJ)
		measK = append(measK, holderSent(out, "B", "A", party.TPName)-ovK)
		lj, pj := costmodel.NumericInitiatorElems(n, n, false)
		model = append(model, float64(lj+pj))
		linear = append(linear, float64(n))
	}
	_, devQuad, err := costmodel.FitScale(measJ, model)
	if err != nil {
		t.Fatal(err)
	}
	_, devLin, err := costmodel.FitScale(measJ, linear)
	if err != nil {
		t.Fatal(err)
	}
	if devQuad > 0.15 {
		t.Fatalf("initiator quadratic fit deviates %.1f%%", devQuad*100)
	}
	if devLin < 2*devQuad {
		t.Fatalf("linear model fits initiator as well as quadratic (%.2f vs %.2f): growth is wrong", devLin, devQuad)
	}
	var modelK []float64
	for _, n := range sizes {
		lk, pk := costmodel.NumericResponderElems(n, n)
		modelK = append(modelK, float64(lk+pk))
	}
	if _, devK, err := costmodel.FitScale(measK, modelK); err != nil || devK > 0.15 {
		t.Fatalf("responder fit deviates %.1f%% (err %v)", devK*100, err)
	}
}

// TestAlphanumericCommunicationCosts is E7: responder traffic follows the
// paper's O(m²+m·q·n·p).
func TestAlphanumericCommunicationCosts(t *testing.T) {
	const p = 16
	empty := runExpSession(t, expAlphaParts(t, 0, p, 0))
	ovK := holderSent(empty, "B", "A", party.TPName)
	var meas, model []float64
	for _, n := range []int{8, 16, 32, 64} {
		out := runExpSession(t, expAlphaParts(t, n, p, uint64(n)))
		meas = append(meas, holderSent(out, "B", "A", party.TPName)-ovK)
		_, pk := costmodel.AlphaResponderElems(n, p, n, p)
		model = append(model, float64(pk))
	}
	if _, dev, err := costmodel.FitScale(meas, model); err != nil || dev > 0.15 {
		t.Fatalf("responder m·q·n·p fit deviates %.1f%% (err %v)", dev*100, err)
	}
}

// TestCategoricalCommunicationCosts is E8: per-holder traffic is linear in
// n.
func TestCategoricalCommunicationCosts(t *testing.T) {
	empty := runExpSession(t, expCatParts(t, 0, 0))
	ov := holderSent(empty, "A", "B", party.TPName)
	var meas, model []float64
	for _, n := range []int{64, 128, 256, 512} {
		out := runExpSession(t, expCatParts(t, n, uint64(n)))
		meas = append(meas, holderSent(out, "A", "B", party.TPName)-ov)
		model = append(model, float64(n))
	}
	if _, dev, err := costmodel.FitScale(meas, model); err != nil || dev > 0.1 {
		t.Fatalf("categorical linear fit deviates %.1f%% (err %v)", dev*100, err)
	}
}

// TestHierarchicalVsKMeansShapes is E13: single linkage recovers concentric
// rings exactly; k-means cannot ("partitioning methods tend to result in
// spherical clusters").
func TestHierarchicalVsKMeansShapes(t *testing.T) {
	rings, err := ppclust.GenRings(50, 100, 1, 5, 0.05, 42)
	if err != nil {
		t.Fatal(err)
	}
	xs, _ := rings.Table.NumericCol(0)
	ys, _ := rings.Table.NumericCol(1)
	n := rings.Table.Len()
	m := dissim.FromLocal(n, func(i, j int) float64 {
		dx, dy := xs[i]-xs[j], ys[i]-ys[j]
		return dx*dx + dy*dy
	})
	dg, err := hcluster.Cluster(m, hcluster.Single)
	if err != nil {
		t.Fatal(err)
	}
	labels, err := dg.Labels(2)
	if err != nil {
		t.Fatal(err)
	}
	ariH, err := ppclust.AdjustedRandIndex(rings.Truth, labels)
	if err != nil {
		t.Fatal(err)
	}
	points := make([][]float64, n)
	for i := range points {
		points[i] = []float64{xs[i], ys[i]}
	}
	km, err := kmeans.KMeans(points, 2, rng.NewXoshiro(rng.SeedFromUint64(7)), kmeans.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ariK, err := ppclust.AdjustedRandIndex(rings.Truth, km.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if ariH < 0.999 {
		t.Fatalf("single linkage ARI = %v on rings, want 1", ariH)
	}
	if ariK > 0.3 {
		t.Fatalf("k-means ARI = %v on rings, expected failure (< 0.3)", ariK)
	}
}

// TestAtallahComparisonModel is E14 at the claim level: for the paper's
// clustering workloads the [8] comparator needs two orders of magnitude
// more traffic.
func TestAtallahComparisonModel(t *testing.T) {
	ours := costmodel.OursAlphaTotalBytes(50, 20, 50, 20)
	theirs := costmodel.DefaultAtallah.TotalBytes(50, 20, 50, 20)
	if ratio := float64(theirs) / float64(ours); ratio < 100 {
		t.Fatalf("Atallah/ours ratio = %.0f, want ≥ 100", ratio)
	}
}

// TestPartyScalingPairs is E15: total cross-holder protocol traffic grows
// with the number of holder pairs C(k,2) when per-holder size is fixed.
func TestPartyScalingPairs(t *testing.T) {
	perHolder := 24
	var meas, model []float64
	for _, k := range []int{2, 3, 4} {
		schema := dataset.Schema{Attrs: []dataset.Attribute{{Name: "x", Type: dataset.Numeric}}}
		s := rng.NewXoshiro(rng.SeedFromUint64(uint64(k)))
		parts := make([]dataset.Partition, k)
		for i := 0; i < k; i++ {
			tab := dataset.MustNewTable(schema)
			for r := 0; r < perHolder; r++ {
				tab.MustAppendRow(rng.Float64(s) * 100)
			}
			parts[i] = dataset.Partition{Site: string(rune('A' + i)), Table: tab}
		}
		out := runExpSession(t, parts)
		// Sum cross-holder links only (the pairwise protocol traffic).
		total := uint64(0)
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				if i == j {
					continue
				}
				b, _ := out.Traffic[party.LinkName(string(rune('A'+i)), string(rune('A'+j)))].Sent()
				total += b
			}
		}
		meas = append(meas, float64(total))
		model = append(model, float64(k*(k-1)/2))
	}
	if _, dev, err := costmodel.FitScale(meas, model); err != nil || dev > 0.35 {
		t.Fatalf("C(k,2) fit deviates %.1f%% (err %v)", dev*100, err)
	}
}
