// TCP deployment: the full three-role protocol over real sockets. One
// process plays all three parties on localhost to keep the example
// self-contained; cmd/ppc-tp and cmd/ppc-holder run the same sessions as
// separate processes on separate machines.
//
// Topology: the third party listens for both holders; holder A listens for
// holder B; every channel is key-agreed and AES-GCM protected by the
// session itself.
package main

import (
	"fmt"
	"io"
	"log"
	"net"

	"ppclust"
)

func main() {
	schema := ppclust.Schema{Attrs: []ppclust.Attribute{
		{Name: "age", Type: ppclust.Numeric},
		{Name: "dna", Type: ppclust.Alphanumeric, Alphabet: ppclust.DNA},
	}}
	holders := []string{"A", "B"}

	a := ppclust.MustNewTable(schema)
	a.MustAppendRow(21.0, "ACGTACGT")
	a.MustAppendRow(24.0, "ACGTACGA")
	b := ppclust.MustNewTable(schema)
	b.MustAppendRow(67.0, "TTGGTTGG")
	b.MustAppendRow(71.0, "TTGGTTGA")

	tpLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer tpLn.Close()
	aLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer aLn.Close()
	fmt.Printf("third party listening on %s, holder A on %s\n", tpLn.Addr(), aLn.Addr())

	errs := make(chan error, 3)

	// Third party: accept both holders (each dial starts with a one-byte
	// holder index so the TP can label the connections).
	go func() {
		conns := map[string]net.Conn{}
		for i := 0; i < 2; i++ {
			conn, err := tpLn.Accept()
			if err != nil {
				errs <- err
				return
			}
			var idx [1]byte
			if _, err := io.ReadFull(conn, idx[:]); err != nil {
				errs <- err
				return
			}
			conns[holders[idx[0]]] = conn
		}
		sess, err := ppclust.NewThirdPartySession(holders, schema, ppclust.Options{}, conns)
		if err != nil {
			errs <- err
			return
		}
		if _, err := sess.Run(); err != nil {
			errs <- err
			return
		}
		errs <- nil
	}()

	dialTP := func(idx byte) (net.Conn, error) {
		conn, err := net.Dial("tcp", tpLn.Addr().String())
		if err != nil {
			return nil, err
		}
		_, err = conn.Write([]byte{idx})
		return conn, err
	}

	// Holder A: dial the TP, accept holder B.
	resCh := make(chan *ppclust.Result, 1)
	go func() {
		tpConn, err := dialTP(0)
		if err != nil {
			errs <- err
			return
		}
		bConn, err := aLn.Accept()
		if err != nil {
			errs <- err
			return
		}
		sess, err := ppclust.NewHolderSession("A", a, holders, schema, ppclust.Options{},
			ppclust.ClusterRequest{Linkage: ppclust.Single, K: 2},
			map[string]net.Conn{"B": bConn, ppclust.ThirdPartyName: tpConn})
		if err != nil {
			errs <- err
			return
		}
		res, err := sess.Run()
		if err != nil {
			errs <- err
			return
		}
		resCh <- res
		errs <- nil
	}()

	// Holder B: dial the TP and holder A.
	go func() {
		tpConn, err := dialTP(1)
		if err != nil {
			errs <- err
			return
		}
		aConn, err := net.Dial("tcp", aLn.Addr().String())
		if err != nil {
			errs <- err
			return
		}
		sess, err := ppclust.NewHolderSession("B", b, holders, schema, ppclust.Options{},
			ppclust.ClusterRequest{Linkage: ppclust.Single, K: 2},
			map[string]net.Conn{"A": aConn, ppclust.ThirdPartyName: tpConn})
		if err != nil {
			errs <- err
			return
		}
		if _, err := sess.Run(); err != nil {
			errs <- err
			return
		}
		errs <- nil
	}()

	for i := 0; i < 3; i++ {
		if err := <-errs; err != nil {
			log.Fatal(err)
		}
	}
	res := <-resCh
	fmt.Println("\nclustering received by holder A over TCP:")
	fmt.Print(res.Format())
}
