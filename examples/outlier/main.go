// Outlier detection: three banks pool transaction profiles to spot
// anomalous accounts, without revealing any profile — the second
// additional application the paper claims.
//
// Profiles mix numeric behaviour (volume, frequency) with a categorical
// segment. One planted anomaly hides at site C.
package main

import (
	"fmt"
	"log"

	"ppclust"
)

func main() {
	schema := ppclust.Schema{Attrs: []ppclust.Attribute{
		{Name: "volume", Type: ppclust.Numeric},
		{Name: "txns", Type: ppclust.Numeric},
		{Name: "segment", Type: ppclust.Categorical},
	}}

	a := ppclust.MustNewTable(schema)
	a.MustAppendRow(120.0, 14.0, "retail")
	a.MustAppendRow(135.0, 11.0, "retail")
	a.MustAppendRow(110.0, 16.0, "retail")

	b := ppclust.MustNewTable(schema)
	b.MustAppendRow(480.0, 33.0, "corporate")
	b.MustAppendRow(455.0, 30.0, "corporate")
	b.MustAppendRow(462.0, 35.0, "corporate")

	c := ppclust.MustNewTable(schema)
	c.MustAppendRow(128.0, 13.0, "retail")
	c.MustAppendRow(9800.0, 210.0, "retail") // the planted anomaly: C2
	c.MustAppendRow(470.0, 31.0, "corporate")

	parts := []ppclust.Partition{
		{Site: "A", Table: a}, {Site: "B", Table: b}, {Site: "C", Table: c},
	}

	matrices, ids, err := ppclust.BuildDissimilarity(schema, parts, ppclust.Options{})
	if err != nil {
		log.Fatal(err)
	}
	merged, err := ppclust.MergeMatrices(matrices, schema.Weights())
	if err != nil {
		log.Fatal(err)
	}

	scores, err := ppclust.OutlierScores(merged, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top anomalies by 2-NN distance (computed on the private matrix):")
	for _, s := range ppclust.TopOutliers(scores, 3) {
		fmt.Printf("  %-3s kdist=%.4f avg=%.4f\n", ids[s.Object], s.KDist, s.AvgKDist)
	}
}
