// Taxonomy: clustering with ordered and hierarchical categorical
// attributes — the distance functions the paper explicitly leaves as future
// work ("dissimilarity between ordered or hierarchical categorical
// attributes ... requires more complex distance functions").
//
// Two clinics hold triage records: an ordered severity level and a
// diagnosis drawn from a public disease taxonomy. Severity compares by rank
// through the numeric protocol; diagnoses compare by tree distance over
// deterministically encrypted root paths, so the third party learns how
// *related* two private diagnoses are without learning what they are.
package main

import (
	"fmt"
	"log"

	"ppclust"
)

func main() {
	severity := ppclust.MustNewOrdering("mild", "moderate", "severe", "critical")
	diseases := ppclust.MustNewTaxonomy("disease")
	diseases.MustAdd("infectious", "disease").
		MustAdd("viral", "infectious").
		MustAdd("influenza", "viral").
		MustAdd("measles", "viral").
		MustAdd("bacterial", "infectious").
		MustAdd("tuberculosis", "bacterial").
		MustAdd("chronic", "disease").
		MustAdd("diabetes", "chronic").
		MustAdd("hypertension", "chronic")

	schema := ppclust.Schema{Attrs: []ppclust.Attribute{
		{Name: "severity", Type: ppclust.Ordered, Order: severity},
		{Name: "diagnosis", Type: ppclust.Hierarchical, Taxonomy: diseases},
	}}

	a := ppclust.MustNewTable(schema)
	a.MustAppendRow("mild", "influenza")
	a.MustAppendRow("moderate", "measles")
	a.MustAppendRow("critical", "diabetes")

	b := ppclust.MustNewTable(schema)
	b.MustAppendRow("mild", "tuberculosis")
	b.MustAppendRow("severe", "hypertension")
	b.MustAppendRow("critical", "hypertension")

	parts := []ppclust.Partition{{Site: "A", Table: a}, {Site: "B", Table: b}}
	out, err := ppclust.Cluster(schema, parts, map[string]ppclust.ClusterRequest{
		"A": {Linkage: ppclust.Average, K: 2},
	}, ppclust.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("published clustering (infectious/mild vs chronic/severe):")
	fmt.Print(out.Results["A"].Format())

	fmt.Println("\nwhat the taxonomy distance sees (normalized diagnosis matrix at the TP):")
	m := out.Report.AttributeMatrices[1]
	ids := out.Report.ObjectIDs
	fmt.Printf("  d(%v influenza, %v measles)      = %.3f (siblings)\n", ids[0], ids[1], m.At(0, 1))
	fmt.Printf("  d(%v influenza, %v tuberculosis) = %.3f (cousins)\n", ids[0], ids[3], m.At(0, 3))
	fmt.Printf("  d(%v influenza, %v diabetes)     = %.3f (different branch)\n", ids[0], ids[2], m.At(0, 2))
}
