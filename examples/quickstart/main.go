// Quickstart: two clinics cluster their joint patient data without sharing
// it. Demonstrates schema definition, partition building, running the full
// privacy-preserving session and reading the published result (the paper's
// Figure 13 format).
package main

import (
	"fmt"
	"log"

	"ppclust"
)

func main() {
	schema := ppclust.Schema{Attrs: []ppclust.Attribute{
		{Name: "age", Type: ppclust.Numeric},
		{Name: "diagnosis", Type: ppclust.Categorical},
		{Name: "marker", Type: ppclust.Alphanumeric, Alphabet: ppclust.DNA},
	}}

	// Site A's private patients.
	a := ppclust.MustNewTable(schema)
	a.MustAppendRow(24.0, "influenza", "ACCGTT")
	a.MustAppendRow(27.0, "influenza", "ACCGTA")
	a.MustAppendRow(68.0, "pneumonia", "GGTTAA")

	// Site B's private patients.
	b := ppclust.MustNewTable(schema)
	b.MustAppendRow(25.0, "influenza", "ACCCTT")
	b.MustAppendRow(71.0, "pneumonia", "GGTTAG")
	b.MustAppendRow(66.0, "pneumonia", "GGTAAA")

	parts := []ppclust.Partition{{Site: "A", Table: a}, {Site: "B", Table: b}}

	out, err := ppclust.Cluster(schema, parts, map[string]ppclust.ClusterRequest{
		"A": {Linkage: ppclust.Average, K: 2},
		"B": {Linkage: ppclust.Average, K: 2},
	}, ppclust.Options{})
	if err != nil {
		log.Fatal(err)
	}

	res := out.Results["A"]
	fmt.Println("Clustering published to site A (paper Figure 13 format):")
	fmt.Print(res.Format())
	fmt.Println("\nQuality parameters (the only statistics the third party reveals):")
	for i, q := range res.Quality {
		fmt.Printf("  Cluster%d: size=%d avgSqDist=%.4f diameter=%.4f\n",
			i+1, q.Size, q.AvgSquaredDistance, q.Diameter)
	}

	fmt.Println("\nWire traffic (ciphertext bytes per directed link):")
	for _, link := range []string{"A->B", "A->TP", "B->TP"} {
		sent, frames := out.Traffic[link].Sent()
		fmt.Printf("  %-7s %6d bytes in %d frames\n", link, sent, frames)
	}
}
