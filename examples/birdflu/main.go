// Bird flu: the paper's motivating scenario. "Several institutions are
// gathering DNA data of individuals infected with bird flu and want to
// cluster this data in order to diagnose the disease. Since DNA data is
// private, these institutions can not simply aggregate their data."
//
// Three institutions hold strains descended from four viral lineages. The
// session clusters all strains by edit distance without any institution
// revealing a sequence, and the recovered clusters are scored against the
// generating lineages.
package main

import (
	"fmt"
	"log"

	"ppclust"
)

func main() {
	// Four lineages, ten strains each, scattered over three institutions.
	data, err := ppclust.GenDNAFamilies(ppclust.DNASpec{
		Families:  4,
		PerFamily: 10,
		Length:    60,
		SubRate:   0.04,
		IndelRate: 0.02,
	}, 2006)
	if err != nil {
		log.Fatal(err)
	}
	parts, truth, err := ppclust.SplitRandom(data, 3, 7)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range parts {
		fmt.Printf("institution %s holds %d strains\n", p.Site, p.Table.Len())
	}

	schema := data.Table.Schema()
	out, err := ppclust.Cluster(schema, parts, map[string]ppclust.ClusterRequest{
		"A": {Linkage: ppclust.Average, K: 4},
	}, ppclust.Options{})
	if err != nil {
		log.Fatal(err)
	}

	res := out.Results["A"]
	fmt.Println("\nPublished clustering:")
	fmt.Print(res.Format())

	labels, err := ppclust.ResultLabels(res, out.Report.ObjectIDs)
	if err != nil {
		log.Fatal(err)
	}
	ari, err := ppclust.AdjustedRandIndex(truth, labels)
	if err != nil {
		log.Fatal(err)
	}
	nmi, _ := ppclust.NMI(truth, labels)
	fmt.Printf("\nrecovery of the generating lineages: ARI=%.3f NMI=%.3f\n", ari, nmi)
	fmt.Println("(1.0 = the private protocol recovered the lineages exactly)")
}
