// Record linkage: two hospitals find which patients they share without
// exchanging patient records — one of the additional applications the
// paper claims for its dissimilarity-matrix protocols.
//
// Each hospital submits name (alphanumeric, edit distance), birth year
// (numeric) and blood type (categorical). The third party constructs the
// private dissimilarity matrix and reports only candidate (id, id) pairs
// under a threshold.
package main

import (
	"fmt"
	"log"

	"ppclust"
)

func main() {
	schema := ppclust.Schema{Attrs: []ppclust.Attribute{
		{Name: "name", Type: ppclust.Alphanumeric, Alphabet: ppclust.AlphaNum, Weight: 3},
		{Name: "birthyear", Type: ppclust.Numeric},
		{Name: "blood", Type: ppclust.Categorical},
	}}

	a := ppclust.MustNewTable(schema)
	a.MustAppendRow("ayse yilmaz", 1970.0, "A+")
	a.MustAppendRow("mehmet demir", 1985.0, "O-")
	a.MustAppendRow("fatma kaya", 1992.0, "B+")

	b := ppclust.MustNewTable(schema)
	b.MustAppendRow("ayse yilmaz", 1970.0, "A+")   // exact duplicate of A1
	b.MustAppendRow("mehmet demi", 1985.0, "O-")   // typo'd duplicate of A2
	b.MustAppendRow("zeynep arslan", 1988.0, "AB") // unique to B

	parts := []ppclust.Partition{{Site: "A", Table: a}, {Site: "B", Table: b}}

	matrices, ids, err := ppclust.BuildDissimilarity(schema, parts, ppclust.Options{})
	if err != nil {
		log.Fatal(err)
	}
	merged, err := ppclust.MergeMatrices(matrices, schema.Weights())
	if err != nil {
		log.Fatal(err)
	}

	matches, err := ppclust.Link(merged, ids, ppclust.LinkOptions{
		Threshold:     0.15,
		CrossSiteOnly: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("candidate cross-hospital links (neither side revealed a record):")
	for _, m := range matches {
		fmt.Printf("  %s <-> %s  distance %.4f\n", m.A, m.B, m.Distance)
	}
	if len(matches) == 0 {
		fmt.Println("  none")
	}
}
