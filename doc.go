// Package ppclust is a from-scratch, stdlib-only implementation of
// privacy-preserving clustering over horizontally partitioned data, after
// İnan, Saygın, Savaş, Hintoğlu and Levi, "Privacy Preserving Clustering on
// Horizontally Partitioned Data" (ICDE Workshops, 2006).
//
// Several data holders, each owning a horizontal partition of a data
// matrix, and a semi-trusted third party jointly construct the global
// dissimilarity matrix of all objects without revealing any attribute
// values: numeric attributes through additively blinded comparison,
// alphanumeric attributes through masked character-comparison matrices and
// edit distance, and categorical attributes through deterministic
// encryption. The third party then runs hierarchical clustering locally and
// publishes only cluster memberships and aggregate quality statistics.
//
// # Quick start
//
//	schema := ppclust.Schema{Attrs: []ppclust.Attribute{
//	    {Name: "age", Type: ppclust.Numeric},
//	    {Name: "diagnosis", Type: ppclust.Categorical},
//	    {Name: "dna", Type: ppclust.Alphanumeric, Alphabet: ppclust.DNA},
//	}}
//	// Each site builds its private partition...
//	a := ppclust.MustNewTable(schema)
//	a.MustAppendRow(23.0, "flu", "ACCGT")
//	// ...and the session runs the full multi-party protocol:
//	out, err := ppclust.Cluster(schema,
//	    []ppclust.Partition{{Site: "A", Table: a}, {Site: "B", Table: b}},
//	    map[string]ppclust.ClusterRequest{"A": {Linkage: ppclust.Average, K: 2}},
//	    ppclust.Options{})
//
// # Parallelism
//
// Every O(n²) stage — local dissimilarity construction, the protocols'
// disguise and mask-stripping steps, the third party's CCM edit-distance
// evaluation, global assembly, weighted merging, normalization, and the
// clustering stage itself (agglomerative row updates, DIANA's splinter
// scans, PAM's BUILD and swap scoring, quality and silhouette
// statistics) — runs on an internal chunked worker engine.
// Options.Parallelism sets the worker count per party: 0 (the default)
// uses all cores, 1 runs serially. The engine guarantees determinism:
// chunk placement is a pure function of the input size, all randomness is
// drawn sequentially before the fan-out, every worker writes only its own
// output range, and cross-chunk reductions replay fixed per-item partials
// serially in index order, so results are bit-identical at any setting.
// Independently of the worker count, batch-mode mask streams are
// generated once per protocol step rather than once per row (the values
// the paper's per-row re-initialization prescribes are unchanged), which
// alone makes the n=256 numeric comparison ≈5× faster than the naive
// per-row evaluation with ≈20× fewer allocations.
//
// # Clustering backend
//
// The third party's agglomerative stage is backed by three exact engines
// (internal/hcluster): Prim's minimum-spanning-tree pass for single
// linkage (O(n²) time, O(n) extra space, no working copy at all), the
// nearest-neighbor-chain algorithm for the other reducible linkages —
// complete, average, weighted, Ward — over a condensed packed working
// copy (guaranteed O(n²) time, half the memory of a dense matrix), and a
// retained nearest-neighbor-cached reference loop for the non-reducible
// centroid and median linkages (near-O(n²) typical, O(n³) worst case).
// The MST and NN-chain engines emit merges in non-decreasing height
// order (centroid/median keep the generic engine's discovery order and
// may show the classical inversions); exact distance ties resolve in
// engine discovery order, which may legitimately differ between engines
// while inducing the same partitions at every distinct height. At n=500 the single-linkage path is ≈12× faster than the
// reference engine. PAM uses FastPAM1-style swap evaluation (cached
// nearest/second-nearest medoid distances score every swap in O(n²) per
// round instead of O(kn²)): ≈17-24× faster at n=512, k=8.
//
// # Pipelined third-party session engine
//
// The third party "serves as a means of computation power and storage
// space" (paper Section 3); on real links its session work is dominated
// by waiting for holder traffic. Its session engine therefore runs as a
// bounded pipeline. Each holder streams its attributes independently —
// for every attribute, in schema order: the local dissimilarity matrix,
// then that attribute's protocol messages — and at the third party one
// reader goroutine per holder demultiplexes the stream into bounded
// per-attribute mailboxes:
//
//	holder A ──recv──▶ demux A ─┐  lane 0   ┌─ stage: receive → assemble → normalize ─▶ matrix 0
//	holder B ──recv──▶ demux B ─┼─ lane 1 ─▶┤  (pool of ≤4 stage goroutines, capped by
//	holder C ──recv──▶ demux C ─┘  lane …   └─  Parallelism, one pooled engine each)  ─▶ matrix …
//
// A pool of stage goroutines pulls whole attributes through receive →
// assemble → normalize, so attribute i's matrix completes while attribute
// i+1 is still on the wire, and clustering starts the moment the last
// matrix lands. The mailboxes are bounded, so a fast sender can run only
// a fixed distance ahead of assembly.
//
// Overlap also exists within an attribute: every partition-sized payload
// streams as a sequence of bounded row-range chunk frames
// (Options.StreamChunkBytes, 256 KiB by default) rather than one
// monolithic body, and the receiving stage consumes every row range the
// moment it arrives,
//
//	local triangle ──▶ chunk [rows 0,512) ─▶ … ─▶ masked S matrix ─▶ chunk [0,256) ─▶ …
//	                        │                          (same lane, in order) │
//	                        ▼                                                ▼
//	                   install rows  ─▶ … ─▶                unmask rows + install cross rows ─▶ normalize
//
// This covers both quadratic message families: each holder's local
// dissimilarity triangles, and the pairwise comparison protocol's
// responder→TP masked S/M matrices — the payload that grows with BOTH
// partitions. Triangle installation proceeds while that attribute's
// remaining chunks and protocol rounds are still on the wire, each
// protocol chunk is unmasked and placed on arrival (mask keystreams stay
// aligned across chunks, so unmasked values are exactly the monolithic
// ones), the sender's gob encoding of chunk i+1 overlaps the transfer of
// chunk i, and — because no session message grows with the partition —
// session size is bounded by memory instead of the transport's 256 MiB
// frame limit. Both sides derive the identical chunk schedules from the
// shared configuration, so the receiver knows every lane's frame quota up
// front. Ordering guarantees are unchanged: every lane preserves its
// holder's send order, stages consume holders in session order and pairs
// in the fixed (J, K) enumeration, every stage writes only its own
// attribute's slot, and all protocol randomness is seeded per (attribute,
// pair) — so the published report is bit-identical to the phase-serial
// reference path (and to the centralized baseline) at any worker count,
// chunk size or pipeline schedule; tie-breaks never depend on arrival
// timing. Overlap pays off whenever link time per attribute is comparable
// to assembly compute — WAN links, many attributes, or large payloads; on
// loss-free in-memory conduits it is simply neutral. The serial path
// remains available for benchmarking and differential tests (it
// reassembles the chunk streams into the monolithic installs, pinning
// that chunking is pure framing).
//
// The wire layer keeps the chunked stream allocation-lean: message encode
// buffers are pooled across sends, the AES-GCM layer reuses its seal
// buffer, and the TCP transport offers a pooled-receive variant, so
// framing a triangle as hundreds of chunks does not multiply allocations.
//
// # Session lifecycle
//
// A session either publishes a report on every party or fails on every
// party with a classified, descriptive error — never a hang, never a
// goroutine leak. Sessions are cancellable (ClusterContext, the session
// types' RunContext) and bounded: Options.SessionTimeout caps the whole
// session, Options.PhaseTimeout arms an inactivity watchdog that
// converts a peer silently going quiet into an ErrSessionTimeout naming
// the starved phase. A failing party broadcasts an abort frame carrying
// its reason before tearing down, so peers report ErrAborted with the
// cause instead of an opaque closed-conduit error. The failure model —
// lifecycle states, the error taxonomy, the deterministic
// fault-injection harness that pins it all under the race detector — is
// specified in docs/ARCHITECTURE.md.
//
// Severed transports need not be fatal: with Options.ReconnectWindow
// armed, a holder↔third-party conduit that dies mid-session parks the
// session in a degraded state instead of failing it, the holder redials
// (NewResumableHolderSession over TCP), and a watermarked handshake
// replays exactly the frames the other side never installed — the
// resumed session completes bit-identically to a fault-free run. Severs
// beyond recovery classify under ErrDisconnected. See
// docs/ARCHITECTURE.md ("Degraded sessions & resume").
//
// # Documentation map
//
// The systems-level architecture — session stage pipeline, determinism
// guarantees, where every knob bites — is documented in
// docs/ARCHITECTURE.md, and the wire protocol — frame layout, MaxFrame
// semantics, the no-retain Conduit.Send contract, AES-GCM sealing, demux
// lane quotas and the chunk-frame schemas — in docs/WIRE.md. The
// examples/quickstart and examples/tcp READMEs walk through the
// streaming knobs with expected output.
//
// Runnable scenarios live under examples/, command-line tools (including a
// real TCP deployment of the three-role protocol) under cmd/, and the
// experiment harness regenerating every figure and analysis of the paper is
// cmd/ppc-bench plus the benchmarks in bench_test.go (ppc-bench -json
// writes the machine-readable perf-regression report — BENCH_1.json, then
// BENCH_2.json with the clustering families recorded per GOMAXPROCS
// setting, then BENCH_3.json adding the session-pipeline family: a full
// session over latency-injecting links, serial vs pipelined third party,
// then BENCH_4.json adding the session-stream family: a big-triangle
// session over bandwidth-limited store-and-forward links sweeping the
// local-matrix chunk size against the monolithic wire shape, then
// BENCH_5.json adding that family's both-partitions-large rows, where the
// chunked pairwise S/M streaming is the lever, then BENCH_9.json adding
// the session-reconnect family: baseline vs armed reconnect window vs a
// mid-session lane flap recovered by watermarked replay).
package ppclust
