package ppclust_test

import (
	"math"
	"testing"

	"ppclust"
)

// TestOrderedHierarchicalFacade is E17 through the public API: the
// future-work attribute types flow through a full session and match the
// centralized baseline.
func TestOrderedHierarchicalFacade(t *testing.T) {
	severity := ppclust.MustNewOrdering("low", "mid", "high")
	tax := ppclust.MustNewTaxonomy("root")
	tax.MustAdd("left", "root").
		MustAdd("l1", "left").
		MustAdd("l2", "left").
		MustAdd("right", "root").
		MustAdd("r1", "right")

	schema := ppclust.Schema{Attrs: []ppclust.Attribute{
		{Name: "sev", Type: ppclust.Ordered, Order: severity},
		{Name: "cat", Type: ppclust.Hierarchical, Taxonomy: tax},
	}}
	a := ppclust.MustNewTable(schema)
	a.MustAppendRow("low", "l1")
	a.MustAppendRow("high", "r1")
	b := ppclust.MustNewTable(schema)
	b.MustAppendRow("mid", "l2")
	b.MustAppendRow("low", "l1")
	parts := []ppclust.Partition{{Site: "A", Table: a}, {Site: "B", Table: b}}

	ms, ids, err := ppclust.BuildDissimilarity(schema, parts, ppclust.Options{Random: detRandom})
	if err != nil {
		t.Fatal(err)
	}
	base, err := ppclust.CentralizedBaseline(schema, parts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ms {
		if !ms[i].EqualWithin(base[i], 1e-9) {
			t.Fatalf("attr %d deviates from baseline", i)
		}
	}
	if len(ids) != 4 {
		t.Fatalf("ids: %v", ids)
	}
	// Identical (sev, cat) rows A1 and B2 are at merged distance 0.
	merged, err := ppclust.MergeMatrices(ms, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if d := merged.At(0, 3); d != 0 {
		t.Fatalf("identical rows at distance %v", d)
	}
	// Sibling-category rows are closer than cross-branch rows.
	if !(ms[1].At(0, 2) < ms[1].At(0, 1)) {
		t.Fatalf("taxonomy ordering violated: sibling %v vs cross-branch %v",
			ms[1].At(0, 2), ms[1].At(0, 1))
	}
}

func TestOrderedValidationFacade(t *testing.T) {
	severity := ppclust.MustNewOrdering("low", "high")
	schema := ppclust.Schema{Attrs: []ppclust.Attribute{
		{Name: "sev", Type: ppclust.Ordered, Order: severity},
	}}
	tab := ppclust.MustNewTable(schema)
	if err := tab.AppendRow("medium"); err == nil {
		t.Fatal("out-of-order value accepted")
	}
	bad := ppclust.Schema{Attrs: []ppclust.Attribute{{Name: "sev", Type: ppclust.Ordered}}}
	if _, err := ppclust.NewTable(bad); err == nil {
		t.Fatal("ordered attribute without ordering accepted")
	}
	badTax := ppclust.Schema{Attrs: []ppclust.Attribute{{Name: "c", Type: ppclust.Hierarchical}}}
	if _, err := ppclust.NewTable(badTax); err == nil {
		t.Fatal("hierarchical attribute without taxonomy accepted")
	}
}

func TestParseSchemaOrdered(t *testing.T) {
	s, err := ppclust.ParseSchema("sev:ordered:low|mid|high,age:numeric")
	if err != nil {
		t.Fatal(err)
	}
	if s.Attrs[0].Type != ppclust.Ordered || s.Attrs[0].Order == nil {
		t.Fatalf("attrs: %+v", s.Attrs)
	}
	if s.Attrs[0].Order.Size() != 3 {
		t.Fatalf("order size = %d", s.Attrs[0].Order.Size())
	}
	if _, err := ppclust.ParseSchema("sev:ordered"); err == nil {
		t.Fatal("ordered without values accepted")
	}
	if _, err := ppclust.ParseSchema("sev:ordered:a|a"); err == nil {
		t.Fatal("duplicate ordered values accepted")
	}
}

// TestMethodsFacade exercises DIANA and PAM through the public API and
// verifies they agree with agglomerative clustering on separated data.
func TestMethodsFacade(t *testing.T) {
	data, err := ppclust.GenGaussians([]ppclust.GaussianCluster{
		{Center: []float64{0}, Stddev: 0.3, N: 8},
		{Center: []float64{50}, Stddev: 0.3, N: 8},
	}, 21)
	if err != nil {
		t.Fatal(err)
	}
	parts, truth, err := ppclust.SplitRoundRobin(data, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, method := range []ppclust.Method{ppclust.MethodAgglomerative, ppclust.MethodDiana, ppclust.MethodPAM} {
		out, err := ppclust.Cluster(data.Table.Schema(), parts,
			map[string]ppclust.ClusterRequest{"A": {Method: method, Linkage: ppclust.Average, K: 2}},
			ppclust.Options{Random: detRandom})
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		labels, err := ppclust.ResultLabels(out.Results["A"], out.Report.ObjectIDs)
		if err != nil {
			t.Fatal(err)
		}
		ari, err := ppclust.AdjustedRandIndex(truth, labels)
		if err != nil {
			t.Fatal(err)
		}
		if ari < 0.999 {
			t.Fatalf("%v ARI = %v on separated blobs", method, ari)
		}
	}

	// Direct matrix-level access to the same algorithms.
	ms, _, err := ppclust.BuildDissimilarity(data.Table.Schema(), parts, ppclust.Options{Random: detRandom})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ppclust.HClusterDiana(ms[0]); err != nil {
		t.Fatal(err)
	}
	res, err := ppclust.PAM(ms[0], 2, 1)
	if err != nil || len(res.Medoids) != 2 {
		t.Fatalf("PAM: %+v, %v", res, err)
	}
}

// TestTaxonomyDistanceSemantics pins the Wu–Palmer-style values through the
// public types.
func TestTaxonomyDistanceSemantics(t *testing.T) {
	tax := ppclust.MustNewTaxonomy("r")
	tax.MustAdd("a", "r").MustAdd("a1", "a").MustAdd("a2", "a").MustAdd("b", "r")
	d, err := tax.Distance("a1", "a2") // depths 3,3; LCA depth 2: 1-4/6
	if err != nil || math.Abs(d-1.0/3.0) > 1e-12 {
		t.Fatalf("sibling distance = %v, %v", d, err)
	}
	d, _ = tax.Distance("a1", "b") // depths 3,2; LCA root: 1-2/5
	if math.Abs(d-0.6) > 1e-12 {
		t.Fatalf("cross-branch distance = %v", d)
	}
}
