module ppclust

go 1.24.0
